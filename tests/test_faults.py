"""The deterministic chaos layer: registry semantics, failpoint-driven
fileio/checkpoint/store behavior, eviction, crash-safe compaction, and
the end-to-end soundness matrix.

The matrix is the point of the whole module: under *any* injected
fault, a query's classification is identical to the fault-free run or
an explicit UNKNOWN -- never a different definite answer.
"""

import errno
import json
import os
import subprocess
import sys
import time

import pytest

from repro import faults
from repro.faults import (
    FailpointRegistry,
    FaultSpecError,
    InjectedFault,
    Rule,
)
from repro.model import serialize
from repro.races.detector import RaceDetector
from repro.serve import QueryDaemon, WitnessStore
from repro.serve.store import recover_compaction
from repro.supervise import RetryPolicy
from repro.supervise.checkpoint import CheckpointJournal, scan_fingerprint
from repro.util.fileio import atomic_write_text

from tests.test_serve import _get, _post
from tests.test_supervise import SRC_DIR, masking_execution


# ----------------------------------------------------------------------
class TestSpecParsing:
    def test_bad_clauses_refuse_loudly(self):
        for spec in (
            "no-equals-sign",
            "point=",
            "=action",
            "p=unknown-action",
            "p=enospc@bogus=1",
            "p=enospc@nth=",
            "p=enospc@nth=three",
            "seed=not-a-number",
        ):
            with pytest.raises(FaultSpecError):
                FailpointRegistry(spec)

    def test_clauses_triggers_and_seed_parse(self):
        reg = FailpointRegistry(
            "seed=7; a=enospc@nth=3 ;b=error:boom; c=off"
        )
        assert reg.seed == 7
        assert set(reg.stats()["points"]) == {"a", "b", "c"}

    def test_rearm_replaces_the_schedule(self):
        reg = FailpointRegistry("a=error")
        reg.arm("b=error")
        with pytest.raises(InjectedFault):
            reg.hit("b")
        reg.hit("a")  # the old clause is gone
        reg.disarm()
        reg.hit("b")  # disarmed: nothing fires
        assert not reg.armed


class TestTriggers:
    def _fired(self, spec, hits):
        reg = FailpointRegistry(spec)
        out = []
        for _ in range(hits):
            try:
                reg.hit("p")
                out.append(False)
            except InjectedFault:
                out.append(True)
        return out

    def test_no_trigger_fires_every_hit(self):
        assert self._fired("p=error", 3) == [True] * 3

    def test_nth_fires_exactly_once(self):
        assert self._fired("p=error@nth=3", 5) == [
            False, False, True, False, False,
        ]

    def test_first_fires_then_stops(self):
        assert self._fired("p=error@first=2", 4) == [
            True, True, False, False,
        ]

    def test_every_k(self):
        assert self._fired("p=error@every=2", 6) == [
            False, True, False, True, False, True,
        ]

    def test_count_override_drives_the_trigger(self):
        # the caller's notion of "the N-th time" (the pool's attempt
        # number) wins over the internal hit counter
        reg = FailpointRegistry("p=error@nth=5")
        reg.hit("p", count=1)  # internal hits=1, but count says 1
        with pytest.raises(InjectedFault):
            reg.hit("p", count=5)

    def test_prob_is_deterministic_per_seed(self):
        def decisions(seed):
            reg = FailpointRegistry(f"seed={seed};p=error@prob=0.5")
            out = []
            for _ in range(64):
                try:
                    reg.hit("p")
                    out.append(0)
                except InjectedFault:
                    out.append(1)
            return out

        a, b = decisions(1), decisions(1)
        assert a == b  # replayable
        assert 0 < sum(a) < 64  # and actually probabilistic
        assert decisions(2) != a  # the seed matters

    def test_after_trigger_uses_arming_time(self):
        rule = Rule(point="p", action="error", trigger="after",
                    trigger_arg=3600.0)
        assert not rule.should_fire(1, seed=0, armed_at=time.monotonic())
        assert rule.should_fire(
            1, seed=0, armed_at=time.monotonic() - 7200.0
        )


class TestActions:
    def test_enospc_and_eio_carry_their_errno(self):
        with pytest.raises(OSError) as exc:
            FailpointRegistry("p=enospc").hit("p")
        assert exc.value.errno == errno.ENOSPC
        with pytest.raises(OSError) as exc:
            FailpointRegistry("p=eio").hit("p")
        assert exc.value.errno == errno.EIO

    def test_oserror_by_name(self):
        with pytest.raises(OSError) as exc:
            FailpointRegistry("p=oserror:EACCES").hit("p")
        assert exc.value.errno == errno.EACCES
        with pytest.raises(FaultSpecError):
            FailpointRegistry("p=oserror:ENOSUCHERRNO").hit("p")

    def test_error_message_param(self):
        with pytest.raises(InjectedFault, match="boom"):
            FailpointRegistry("p=error:boom").hit("p")

    def test_sleep_blocks_for_the_given_time(self):
        t0 = time.monotonic()
        FailpointRegistry("p=sleep:0.05").hit("p")
        assert time.monotonic() - t0 >= 0.05

    def test_oom_without_rlimit_is_simulated(self):
        with pytest.raises(MemoryError):
            FailpointRegistry("p=oom").hit("p")

    @pytest.mark.parametrize(
        "spec,expected",
        [("p=exit:7", 7), ("p=segv", -11)],
    )
    def test_process_killing_actions(self, spec, expected):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_FAILPOINTS"] = spec
        proc = subprocess.run(
            [sys.executable, "-c",
             "from repro import faults; faults.fire('p')"],
            env=env, timeout=60,
        )
        assert proc.returncode == expected

    def test_stats_count_hits_and_fires(self):
        reg = FailpointRegistry("p=error@nth=2;q=off")
        reg.hit("p")
        with pytest.raises(InjectedFault):
            reg.hit("p")
        reg.hit("q")
        stats = reg.stats()
        assert stats["points"]["p"] == {"hits": 2, "fired": 1}
        assert stats["points"]["q"] == {"hits": 1, "fired": 0}


class TestGlobalRegistry:
    def test_disarmed_fire_is_a_noop(self):
        assert not faults.REGISTRY.armed
        faults.fire("never.armed")  # must not raise, count, or allocate

    def test_arm_exports_the_environment(self):
        faults.arm("p=error@nth=999")
        assert os.environ["REPRO_FAILPOINTS"] == "p=error@nth=999"
        faults.fire("p")  # nth=999: armed but silent
        faults.disarm()
        assert "REPRO_FAILPOINTS" not in os.environ

    def test_spawned_process_inherits_the_schedule(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_FAILPOINTS"] = "p=error"
        out = subprocess.run(
            [sys.executable, "-c",
             "from repro import faults; print(faults.REGISTRY.armed)"],
            env=env, capture_output=True, text=True, timeout=60,
        )
        assert out.stdout.strip() == "True"


# ----------------------------------------------------------------------
class TestFileioFailpoints:
    def test_failed_replace_removes_the_tmp_and_keeps_the_original(
        self, tmp_path
    ):
        """The satellite contract: even when ``os.replace`` *itself*
        fails, the temporary sibling is removed and the original file
        is untouched."""
        path = str(tmp_path / "snap.json")
        atomic_write_text(path, "old\n")
        faults.arm("fileio.replace=enospc")
        with pytest.raises(OSError) as exc:
            atomic_write_text(path, "new\n")
        assert exc.value.errno == errno.ENOSPC
        faults.disarm()
        assert open(path).read() == "old\n"
        assert not os.path.exists(path + ".tmp")
        atomic_write_text(path, "new\n")  # recovered
        assert open(path).read() == "new\n"

    @pytest.mark.parametrize(
        "point", ["fileio.open", "fileio.write", "fileio.fsync"]
    )
    def test_every_stage_cleans_up(self, tmp_path, point):
        path = str(tmp_path / "snap.json")
        atomic_write_text(path, "old\n")
        faults.arm(f"{point}=eio")
        with pytest.raises(OSError):
            atomic_write_text(path, "new\n")
        faults.disarm()
        assert open(path).read() == "old\n"
        assert not os.path.exists(path + ".tmp")

    def test_fsync_false_skips_the_fsync_failpoint(self, tmp_path):
        path = str(tmp_path / "snap.json")
        faults.arm("fileio.fsync=eio")
        atomic_write_text(path, "tear-free only\n", fsync=False)
        faults.disarm()
        assert open(path).read() == "tear-free only\n"


# ----------------------------------------------------------------------
class TestCheckpointFailpoints:
    def test_enospc_on_append_spares_the_header_and_resumes(self, tmp_path):
        exe = masking_execution(2)
        serial = RaceDetector(exe).feasible_races()
        fingerprint = scan_fingerprint(exe)
        path = str(tmp_path / "scan.jsonl")
        journal = CheckpointJournal.open(path, fingerprint)
        # hits count only while armed: the already-written header does
        # not, so the first classification append is hit 1
        faults.arm("checkpoint.append=enospc@nth=1")
        with pytest.raises(OSError) as exc:
            journal.append(serial.classifications[0])
        assert exc.value.errno == errno.ENOSPC
        # the disk recovers; the same journal keeps appending
        journal.append(serial.classifications[0])
        journal.close()
        faults.disarm()
        resumed = CheckpointJournal.open(path, fingerprint, resume=True)
        assert len(resumed.resumed_records) == 1
        resumed.close()

    def test_fsync_failure_surfaces(self, tmp_path):
        faults.arm("checkpoint.fsync=eio")
        with pytest.raises(OSError):
            CheckpointJournal.open(str(tmp_path / "scan.jsonl"), "f" * 64)


# ----------------------------------------------------------------------
class TestStoreFlushFailpoints:
    def test_consecutive_failures_count_passes_not_entries(self, tmp_path):
        store = WitnessStore(str(tmp_path))
        store.put_execution(masking_execution(2))
        store.put_execution(masking_execution(3))
        # one pass, two dirty entries, both fail: ONE consecutive bump
        faults.arm("store.flush=enospc@first=3")
        assert store.flush() == 0
        assert store.flush_failures == 2
        assert store.consecutive_flush_failures == 1
        # second pass: one entry fails (3rd firing), one writes
        assert store.flush() == 1
        assert store.consecutive_flush_failures == 2
        faults.disarm()
        # a clean pass resets the consecutive counter
        assert store.flush() == 1
        assert store.consecutive_flush_failures == 0
        assert store.stats()["dirty"] == 0

    def test_put_execution_failure_is_not_acknowledged(self, tmp_path):
        store = WitnessStore(str(tmp_path))
        exe = masking_execution(2)
        faults.arm("store.put=enospc@nth=1")
        with pytest.raises(OSError):
            store.put_execution(exe)
        faults.disarm()
        assert store.stats()["executions"] == 0  # never registered
        assert store.consecutive_flush_failures == 1
        fp = store.put_execution(exe)  # the retry lands
        assert fp in store

    def test_probe_reports_disk_health(self, tmp_path):
        store = WitnessStore(str(tmp_path))
        assert store.probe()
        faults.arm("fileio.fsync=enospc")
        assert not store.probe()
        faults.disarm()
        assert store.probe()
        assert not os.path.exists(os.path.join(str(tmp_path), ".probe"))


# ----------------------------------------------------------------------
class TestEviction:
    def test_lru_eviction_keeps_the_store_under_the_cap(self, tmp_path):
        store = WitnessStore(str(tmp_path), max_entries=2)
        fps = [
            store.put_execution(masking_execution(w)) for w in (2, 3, 4)
        ]
        assert store.stats()["executions"] == 2
        assert store.evictions == 1
        assert fps[0] not in store  # the oldest went
        assert fps[1] in store and fps[2] in store
        # evicted means GONE, not quarantined: no evidence debris
        assert not os.path.exists(os.path.join(str(tmp_path), fps[0]))
        assert not [
            n for n in os.listdir(str(tmp_path)) if ".corrupt" in n
        ]

    def test_touch_order_protects_recently_used_entries(self, tmp_path):
        store = WitnessStore(str(tmp_path), max_entries=2)
        fp_a = store.put_execution(masking_execution(2))
        store.put_execution(masking_execution(3))
        store.points_for(fp_a)  # touch A: B becomes the LRU
        store.put_execution(masking_execution(4))
        assert fp_a in store

    def test_evicted_entry_is_rebuildable(self, tmp_path):
        store = WitnessStore(str(tmp_path), max_entries=1)
        exe = masking_execution(2)
        fp = store.put_execution(exe)
        store.put_execution(masking_execution(3))  # evicts fp
        assert fp not in store
        # the client re-posts; the observed-schedule witness comes back
        assert store.put_execution(exe) == fp
        assert store.points_for(fp)

    def test_reopen_enforces_a_tighter_cap(self, tmp_path):
        store = WitnessStore(str(tmp_path))
        for w in (2, 3, 4):
            store.put_execution(masking_execution(w))
        store.flush()
        reloaded = WitnessStore(str(tmp_path), max_entries=1)
        assert reloaded.stats()["executions"] == 1
        assert reloaded.evictions == 2

    def test_byte_cap_never_evicts_the_triggering_entry(self, tmp_path):
        store = WitnessStore(str(tmp_path), max_bytes=1)
        fp_a = store.put_execution(masking_execution(2))
        assert fp_a in store  # over cap, but keep= protects it
        fp_b = store.put_execution(masking_execution(3))
        assert fp_b in store and fp_a not in store
        assert store.stats()["executions"] == 1


# ----------------------------------------------------------------------
class TestCompaction:
    def _seeded_store(self, root):
        store = WitnessStore(root)
        fps = [store.put_execution(masking_execution(w)) for w in (2, 3)]
        store.flush()
        return store, fps

    def test_compact_reclaims_quarantine_debris(self, tmp_path):
        root = str(tmp_path / "store")
        store, fps = self._seeded_store(root)
        (tmp_path / "store" / f"{fps[0]}.corrupt-1").mkdir()
        carried = store.compact()
        assert carried == 2
        assert store.compactions == 1
        names = os.listdir(root)
        assert not [n for n in names if ".corrupt" in n]
        reloaded = WitnessStore(root)
        assert sorted(reloaded.fingerprints()) == sorted(fps)
        for fp in fps:
            assert reloaded.points_for(fp)

    @pytest.mark.parametrize(
        "stage",
        ["store.compact.built", "store.compact.swapped-out",
         "store.compact.swapped-in"],
    )
    def test_in_process_failure_at_any_stage_recovers(
        self, tmp_path, stage
    ):
        root = str(tmp_path / "store")
        store, fps = self._seeded_store(root)
        faults.arm(f"{stage}=error")
        with pytest.raises(InjectedFault):
            store.compact()
        faults.disarm()
        # the live store recovered in-process: root is one complete
        # generation, no sibling debris, still answering and flushable
        assert os.path.isdir(root)
        assert not os.path.isdir(root + ".compact-new")
        assert not os.path.isdir(root + ".compact-old")
        for fp in fps:
            assert store.points_for(fp)
        store.flush()
        reloaded = WitnessStore(root)
        assert sorted(reloaded.fingerprints()) == sorted(fps)

    @pytest.mark.parametrize(
        "stage",
        ["store.compact.built", "store.compact.swapped-out",
         "store.compact.swapped-in"],
    )
    def test_sigkill_mid_compaction_recovers_on_reopen(
        self, tmp_path, stage
    ):
        """The acceptance criterion: a process killed dead (``os._exit``
        -- no cleanup handlers, like SIGKILL) at any compaction stage
        leaves a store the next open recovers to exactly the old or the
        new generation, never a mix."""
        root = str(tmp_path / "store")
        _, fps = self._seeded_store(root)
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_FAILPOINTS"] = f"{stage}=exit:137"
        proc = subprocess.run(
            [sys.executable, "-c",
             "import sys; "
             "from repro.serve.store import WitnessStore; "
             "WitnessStore(sys.argv[1]).compact()", root],
            env=env, timeout=120,
        )
        assert proc.returncode == 137
        reloaded = WitnessStore(root)
        assert sorted(reloaded.fingerprints()) == sorted(fps)
        for fp in fps:
            assert reloaded.points_for(fp)
        assert not os.path.isdir(root + ".compact-new")
        assert not os.path.isdir(root + ".compact-old")

    def test_recover_compaction_dir_states(self, tmp_path):
        # root missing + old present: restore the old generation
        root = str(tmp_path / "a")
        os.makedirs(root + ".compact-old/entry")
        os.makedirs(root + ".compact-new")
        assert "restored" in recover_compaction(root)
        assert os.path.isdir(os.path.join(root, "entry"))
        assert not os.path.isdir(root + ".compact-new")
        # root missing + only new: adopt it (hand-moved directories)
        root = str(tmp_path / "b")
        os.makedirs(root + ".compact-new/entry")
        assert "adopted" in recover_compaction(root)
        assert os.path.isdir(os.path.join(root, "entry"))
        # root present + both siblings: drop both
        root = str(tmp_path / "c")
        os.makedirs(root)
        os.makedirs(root + ".compact-old")
        os.makedirs(root + ".compact-new")
        assert recover_compaction(root) is not None
        assert not os.path.isdir(root + ".compact-old")
        assert not os.path.isdir(root + ".compact-new")
        # nothing to do
        assert recover_compaction(str(tmp_path / "d")) is None


# ----------------------------------------------------------------------
class TestChaosMatrix:
    """The soundness invariant, end-to-end through the daemon: under
    any injected fault a query answers exactly like the fault-free run
    or an explicit UNKNOWN -- never a different definite verdict.  A
    refused request (5xx/507) is acceptable; a wrong answer is not."""

    SCHEDULES = [
        "store.flush=enospc",                 # disk never takes a flush
        "fileio.fsync=enospc@every=2",        # every other fsync dies
        "pool.task=error@nth=1",              # worker bug on first task
        "pool.task=segv@first=1",             # every fresh worker crashes
        "serve.query=error@nth=2",            # handler bug mid-stream
    ]

    def _queries(self, exe, fp):
        a, b = exe.conflicting_pairs()[0]
        return [
            ("ccw", {"fingerprint": fp, "relation": "ccw", "a": a, "b": b}),
            ("mhb", {"fingerprint": fp, "relation": "mhb", "a": a, "b": b}),
            ("feasible", {"fingerprint": fp, "relation": "feasible"}),
        ]

    def _run(self, root, exe, *, spec=None):
        """Post the execution and run the query set under ``spec``;
        returns {name: verdict} for the queries that answered 200."""
        if spec:
            faults.arm(spec)
        try:
            store = WitnessStore(root)
            daemon = QueryDaemon(
                store, port=0, workers=1,
                retry=RetryPolicy(
                    max_retries=1, backoff_base=0.01, jitter=0.5
                ),
                default_timeout=60.0,
            ).start()
            try:
                code, out, _ = _post(
                    daemon.url("/executions"),
                    serialize.execution_to_dict(exe),
                )
                verdicts = {}
                if code == 200:
                    for name, body in self._queries(exe, out["fingerprint"]):
                        qcode, doc, _ = _post(daemon.url("/query"), body)
                        if qcode == 200:
                            verdicts[name] = doc["verdict"]
                        else:
                            assert qcode in (500, 503, 507), (name, doc)
                # whatever was injected, the daemon itself survived
                assert _get(daemon.url("/healthz"))[0] == 200
                return verdicts
            finally:
                if spec:
                    faults.disarm()
                daemon.close(drain=False)
        finally:
            faults.disarm()

    def test_faulted_verdicts_match_baseline_or_unknown(self, tmp_path):
        exe = masking_execution(2)
        baseline = self._run(str(tmp_path / "baseline"), exe)
        assert set(baseline) == {"ccw", "mhb", "feasible"}
        assert all(v != "UNKNOWN" for v in baseline.values())
        for i, spec in enumerate(self.SCHEDULES):
            got = self._run(str(tmp_path / f"chaos-{i}"), exe, spec=spec)
            for name, verdict in got.items():
                assert verdict in (baseline[name], "UNKNOWN"), (
                    spec, name, verdict, baseline[name],
                )
