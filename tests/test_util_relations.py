"""Unit tests for the binary-relation helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.relations import (
    BinaryRelation,
    is_antisymmetric,
    is_irreflexive,
    is_strict_partial_order,
    is_symmetric,
    is_transitive,
)


def rel(pairs, universe=range(4)):
    return BinaryRelation(universe, pairs)


class TestConstruction:
    def test_pairs_outside_universe_rejected(self):
        with pytest.raises(ValueError):
            BinaryRelation([1, 2], [(1, 3)])

    def test_membership_and_call(self):
        r = rel([(0, 1)])
        assert (0, 1) in r
        assert r(0, 1)
        assert not r(1, 0)

    def test_len_and_eq(self):
        assert len(rel([(0, 1), (1, 2)])) == 2
        assert rel([(0, 1)]) == rel([(0, 1)])
        assert rel([(0, 1)]) != rel([(1, 0)])

    def test_hashable(self):
        assert len({rel([(0, 1)]), rel([(0, 1)])}) == 1


class TestAlgebra:
    def test_union_intersection_difference(self):
        a, b = rel([(0, 1), (1, 2)]), rel([(1, 2), (2, 3)])
        assert a.union(b).pairs == {(0, 1), (1, 2), (2, 3)}
        assert a.intersection(b).pairs == {(1, 2)}
        assert a.difference(b).pairs == {(0, 1)}

    def test_mismatched_universe_rejected(self):
        with pytest.raises(ValueError):
            rel([(0, 1)]).union(BinaryRelation(range(3), [(0, 1)]))

    def test_complement_excludes_diagonal(self):
        r = rel([(0, 1)], universe=range(2))
        assert r.complement().pairs == {(1, 0)}

    def test_complement_reflexive_option(self):
        r = rel([], universe=range(2))
        assert (0, 0) in r.complement(reflexive=True)

    def test_converse(self):
        assert rel([(0, 1), (2, 3)]).converse().pairs == {(1, 0), (3, 2)}

    def test_issubset(self):
        assert rel([(0, 1)]).issubset(rel([(0, 1), (1, 2)]))
        assert not rel([(2, 0)]).issubset(rel([(0, 1)]))

    def test_restricted(self):
        r = rel([(0, 1), (1, 2), (2, 3)]).restricted([1, 2])
        assert r.pairs == {(1, 2)}
        assert set(r.universe) == {1, 2}

    def test_transitive_closure(self):
        r = rel([(0, 1), (1, 2)]).transitive_closure()
        assert (0, 2) in r
        assert is_transitive(r)


class TestPredicates:
    def test_irreflexive(self):
        assert is_irreflexive(rel([(0, 1)]))
        assert not is_irreflexive(rel([(1, 1)]))

    def test_symmetric(self):
        assert is_symmetric(rel([(0, 1), (1, 0)]))
        assert not is_symmetric(rel([(0, 1)]))

    def test_antisymmetric(self):
        assert is_antisymmetric(rel([(0, 1)]))
        assert not is_antisymmetric(rel([(0, 1), (1, 0)]))

    def test_transitive(self):
        assert is_transitive(rel([(0, 1), (1, 2), (0, 2)]))
        assert not is_transitive(rel([(0, 1), (1, 2)]))

    def test_strict_partial_order(self):
        assert is_strict_partial_order(rel([(0, 1), (1, 2), (0, 2)]))
        assert not is_strict_partial_order(rel([(0, 1), (1, 0)]))


@st.composite
def random_relations(draw):
    n = draw(st.integers(1, 5))
    pairs = draw(
        st.sets(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)), max_size=12
        )
    )
    return BinaryRelation(range(n), pairs)


class TestRelationProperties:
    @given(random_relations())
    @settings(max_examples=80, deadline=None)
    def test_double_complement_identity(self, r):
        diag_free = {(a, b) for a, b in r.pairs if a != b}
        assert r.complement().complement().pairs == diag_free

    @given(random_relations())
    @settings(max_examples=80, deadline=None)
    def test_double_converse_identity(self, r):
        assert r.converse().converse() == r

    @given(random_relations())
    @settings(max_examples=80, deadline=None)
    def test_closure_idempotent(self, r):
        c = r.transitive_closure()
        assert c.transitive_closure() == c
