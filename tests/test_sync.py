"""Unit tests for the synchronization state machines."""

import pytest

from repro.model.builder import ExecutionBuilder
from repro.sync.eventvar import EventVariable
from repro.sync.semaphore import BinarySemaphore, Semaphore, SemaphoreError
from repro.sync.state import SyncState


class TestSemaphore:
    def test_initial_count(self):
        s = Semaphore("s", 2)
        assert s.count == 2 and s.can_p()

    def test_negative_initial_rejected(self):
        with pytest.raises(ValueError):
            Semaphore("s", -1)

    def test_p_requires_token(self):
        s = Semaphore("s")
        assert not s.can_p()
        with pytest.raises(SemaphoreError):
            s.p()

    def test_v_then_p(self):
        s = Semaphore("s")
        s.v()
        assert s.can_p()
        s.p()
        assert s.count == 0

    def test_counting_accumulates(self):
        s = Semaphore("s")
        for _ in range(5):
            s.v()
        assert s.count == 5

    def test_reset(self):
        s = Semaphore("s", 1)
        s.p()
        s.reset()
        assert s.count == 1

    def test_copy_independent(self):
        s = Semaphore("s", 1)
        t = s.copy()
        t.p()
        assert s.count == 1 and t.count == 0


class TestBinarySemaphore:
    def test_clamps_at_one(self):
        s = BinarySemaphore("s")
        s.v()
        s.v()
        assert s.count == 1

    def test_initial_restricted(self):
        with pytest.raises(ValueError):
            BinarySemaphore("s", 2)

    def test_copy_preserves_type(self):
        s = BinarySemaphore("s", 1)
        t = s.copy()
        t.v()
        assert t.count == 1  # still clamped => still binary


class TestEventVariable:
    def test_initially_cleared(self):
        v = EventVariable("v")
        assert not v.can_wait()

    def test_post_wait_clear_cycle(self):
        v = EventVariable("v")
        v.post()
        assert v.can_wait()
        v.wait()  # non-consuming
        assert v.can_wait()
        v.clear()
        assert not v.can_wait()

    def test_wait_while_cleared_raises(self):
        with pytest.raises(RuntimeError):
            EventVariable("v").wait()

    def test_initially_posted(self):
        v = EventVariable("v", posted=True)
        assert v.can_wait()
        v.clear()
        v.reset()
        assert v.can_wait()


def build_simple_execution():
    b = ExecutionBuilder()
    main = b.process("main")
    f = main.fork()
    child = b.process("child", parent=f)
    v = child.sem_v("s")
    j = main.join(f)
    p = b.process("other").sem_p("s")
    return b.build(), f.eid, v, j, p


class TestSyncState:
    def test_p_gated_by_count(self):
        exe, f, v, j, p = build_simple_execution()
        st = SyncState(exe)
        assert not st.can_complete(exe.event(p))
        st.complete(exe.event(f))
        st.complete(exe.event(v))
        assert st.can_complete(exe.event(p))

    def test_join_gated_by_children(self):
        exe, f, v, j, p = build_simple_execution()
        st = SyncState(exe)
        st.complete(exe.event(f))
        assert not st.can_complete(exe.event(j))
        st.complete(exe.event(v))
        assert st.can_complete(exe.event(j))

    def test_double_completion_rejected(self):
        exe, f, v, j, p = build_simple_execution()
        st = SyncState(exe)
        st.complete(exe.event(f))
        with pytest.raises(RuntimeError):
            st.complete(exe.event(f))

    def test_blocked_completion_rejected(self):
        exe, f, v, j, p = build_simple_execution()
        st = SyncState(exe)
        with pytest.raises(RuntimeError):
            st.complete(exe.event(p))

    def test_event_variable_gating(self):
        b = ExecutionBuilder()
        p1 = b.process("p1")
        post = p1.post("v")
        clear = p1.clear("v")
        w = b.process("p2").wait("v")
        exe = b.build()
        st = SyncState(exe)
        assert not st.can_complete(exe.event(w))
        st.complete(exe.event(post))
        assert st.can_complete(exe.event(w))
        st.complete(exe.event(clear))
        assert not st.can_complete(exe.event(w))

    def test_snapshot_hashable_and_changes(self):
        exe, f, v, j, p = build_simple_execution()
        st = SyncState(exe)
        s0 = st.snapshot()
        st.complete(exe.event(f))
        assert st.snapshot() != s0
        hash(st.snapshot())

    def test_binary_mode(self):
        b = ExecutionBuilder()
        p1 = b.process("p1")
        v1, v2 = p1.sem_v("s"), p1.sem_v("s")
        exe = b.build()
        st = SyncState(exe, binary_semaphores=True)
        st.complete(exe.event(v1))
        st.complete(exe.event(v2))
        assert st.semaphores["s"].count == 1
