"""Regenerate ``results/por_baseline.json``.

The baseline pins the (deterministic) engine-state counts of the
``por=sleep`` engine-only scans in the planner study;
``bench_race_detection.test_planner_portfolio_vs_engine_only`` fails if
a scan ever exceeds them.  Run this after an *intentional* engine or
workload change and check in the diff:

    PYTHONPATH=src:benchmarks python benchmarks/regen_por_baseline.py
"""

import json

from bench_race_detection import POR_BASELINE, POR_MODELS, run_planner_study


def main():
    rows = run_planner_study()
    states = {}
    for r in rows:
        for model in POR_MODELS:
            key = f"{r['name']}/{model}"
            states[key] = r["por"][(model, "sleep")].planner.engine_states()
    doc = {
        "comment": (
            "Engine-state counts for the por=sleep engine-only scan of "
            "the planner-study workloads (deterministic). Regenerate "
            "with benchmarks/regen_por_baseline.py after an intentional "
            "engine change; bench_race_detection fails if a scan "
            "exceeds these."
        ),
        "engine_states_sleep": states,
    }
    with open(POR_BASELINE, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {POR_BASELINE}")
    for key, value in states.items():
        print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
