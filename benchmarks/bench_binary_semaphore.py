"""Experiment X2 -- the binary-semaphore remark (end of Section 5.1).

"The above proofs do not make use of the general counting ability of
counting semaphores, and therefore also hold for programs that use
binary semaphores."

The Theorem 1 construction is re-run with every semaphore interpreted
as binary (V clamps at 1) and the equivalences re-checked against DPLL.
Binary mode disables the engine's V-hoisting reduction, so this is also
the costliest configuration -- state counts are reported alongside the
counting-mode ones.
"""

import time

from conftest import report, table

from repro.reductions import semaphore_reduction
from repro.sat.cnf import CNF
from repro.sat.dpll import solve

FORMULAS = [
    ("sat-3x2", CNF([(1, 2, 3), (-1, -2, 3)])),
    ("unsat-1var", CNF([(1, 1, 1), (-1, -1, -1)])),
    ("sat-3x3", CNF([(1, 2, 3), (-1, 2, 3), (1, -2, 3)])),
    ("unsat-2var", CNF([(1, 2, 2), (1, -2, -2), (-1, 2, 2), (-1, -2, -2)])),
]


def run_study():
    rows = []
    for name, f in FORMULAS:
        is_sat = solve(f) is not None
        red = semaphore_reduction(f)
        per_mode = {}
        for binary in (False, True):
            q = red.queries(binary_semaphores=binary, max_states=3_000_000)
            t0 = time.perf_counter()
            mhb = q.mhb(red.a, red.b)
            chb = q.chb(red.b, red.a)
            per_mode[binary] = dict(
                mhb=mhb, chb=chb, states=q.stats.states_visited,
                seconds=time.perf_counter() - t0,
            )
        rows.append(dict(name=name, sat=is_sat, modes=per_mode))
    return rows


def test_binary_semaphore_equivalences(benchmark):
    rows = benchmark(run_study)

    body = []
    for r in rows:
        for binary in (False, True):
            mode = r["modes"][binary]
            assert mode["mhb"] == (not r["sat"])
            assert mode["chb"] == r["sat"]
            body.append(
                [
                    r["name"], "SAT" if r["sat"] else "UNSAT",
                    "binary" if binary else "counting",
                    mode["mhb"], mode["chb"], mode["states"],
                    f"{mode['seconds'] * 1e3:.1f}ms",
                ]
            )

    lines = table(
        ["formula", "DPLL", "semaphores", "a MHB b", "b CHB a", "states", "time"],
        body,
    )
    lines.append("")
    lines.append("equivalences identical under binary clamping (asserted);")
    lines.append("binary mode costs more states (V-hoisting is unsound there)")
    report("binary_semaphore", lines)
