"""Vector-clock happened-before over the observed execution.

This is the classical dynamic-analysis baseline (and, for semaphores,
exactly the *unsafe* phase 1 of Helmbold/McDowell/Wang): take the
observed trace, pair each blocking completion with the specific signal
that satisfied it in *this* run --

* the ``i``-th completed ``P(s)`` consumed (one of) the first ``i``
  ``V(s)`` completions; the naive pairing draws the edge from the
  ``i``-th ``V(s)`` (offset by the initial count);
* each ``Wait(v)`` is ordered after the most recent ``Post(v)``;
* fork/join and program order contribute their structural edges --

and close transitively via vector clocks.  The result describes one
member of ``F`` faithfully, but treats its accidental pairings as
guaranteed: the paper's point (and the HMW benchmark's) is that another
feasible execution may pair the operations differently, so edges of
this relation are *not* all must-orderings.

The relation computed is over event *completions* (the trace is
serial), matching the ``mcb`` exact baseline in
:class:`repro.core.queries.OrderingQueries`.

Program order is threaded as the adjacent SC chain regardless of the
execution's memory model: the clocks describe the *observed* serial
schedule, in which every event did complete before its successor
began.  As a must-ordering approximation under a relaxed model this is
unsound, which is why the ``vc`` planner backend declares
``supported_models = {"sc"}``; the apparent-race detector keeps using
it under every model because "apparent" is by definition a statement
about the observed pairing, not about ``F``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.model.events import EventKind
from repro.model.execution import ProgramExecution
from repro.util.relations import BinaryRelation


class VectorClockAnalysis:
    """Vector clocks for one observed serial schedule of an execution.

    Parameters
    ----------
    exe:
        The execution; must carry an observed schedule unless one is
        supplied explicitly.
    schedule:
        Optional serial completion order (defaults to
        ``exe.observed_schedule``).
    """

    def __init__(self, exe: ProgramExecution, schedule: Optional[Sequence[int]] = None):
        self.exe = exe
        if schedule is None:
            schedule = exe.observed_schedule
        if schedule is None:
            raise ValueError(
                "execution has no observed schedule; pass one explicitly "
                "(e.g. a witness serial order)"
            )
        self.schedule: Tuple[int, ...] = tuple(schedule)
        self._proc_index: Dict[str, int] = {p: i for i, p in enumerate(exe.process_names)}
        self.clocks: Dict[int, Tuple[int, ...]] = {}
        self.sync_edges: List[Tuple[int, int]] = []
        self._compute()

    # ------------------------------------------------------------------
    def _compute(self) -> None:
        exe = self.exe
        nproc = len(self._proc_index)
        zero = (0,) * nproc

        # identify the trace-order pairing edges --------------------------
        v_seen: Dict[str, List[int]] = {s: [] for s in exe.semaphores}
        p_seen: Dict[str, int] = {s: 0 for s in exe.semaphores}
        last_post: Dict[str, Optional[int]] = {v: None for v in exe.event_variables}
        pos = {eid: i for i, eid in enumerate(self.schedule)}

        for eid in self.schedule:
            e = exe.event(eid)
            if e.kind is EventKind.SEM_V:
                v_seen[e.obj].append(eid)
            elif e.kind is EventKind.SEM_P:
                idx = p_seen[e.obj]
                p_seen[e.obj] += 1
                # the i-th P consumed the (i - initial)-th V, when one exists
                k = idx - exe.sem_initial(e.obj)
                if 0 <= k < len(v_seen[e.obj]):
                    self.sync_edges.append((v_seen[e.obj][k], eid))
            elif e.kind is EventKind.POST:
                last_post[e.obj] = eid
            elif e.kind is EventKind.CLEAR:
                # a Clear re-arms the variable: later Waits need a later Post
                last_post[e.obj] = None
            elif e.kind is EventKind.WAIT:
                if last_post[e.obj] is not None:
                    self.sync_edges.append((last_post[e.obj], eid))

        # structural edges -------------------------------------------------
        extra: Dict[int, List[int]] = {eid: [] for eid in exe.eids}
        for src, dst in self.sync_edges:
            extra[dst].append(src)
        for feid, children in exe.fork_children.items():
            for c in children:
                evs = exe.process_events(c)
                if evs:
                    extra[evs[0]].append(feid)
        for jeid, targets in exe.join_targets.items():
            for t in targets:
                evs = exe.process_events(t)
                if evs:
                    extra[jeid].append(evs[-1])

        # sweep in schedule order ------------------------------------------
        for eid in self.schedule:
            e = exe.event(eid)
            pi = self._proc_index[e.process]
            clock = list(zero)
            pred = exe.po_predecessor(eid)
            sources = ([pred] if pred is not None else []) + extra[eid]
            for s in sources:
                if s not in self.clocks:
                    raise ValueError(
                        f"schedule is not consistent: event {eid} depends on "
                        f"{s} which has not completed yet"
                    )
                sc = self.clocks[s]
                for i in range(nproc):
                    if sc[i] > clock[i]:
                        clock[i] = sc[i]
            clock[pi] += 1
            self.clocks[eid] = tuple(clock)

    # ------------------------------------------------------------------
    def happened_before(self, a: int, b: int) -> bool:
        """``a`` causally precedes ``b`` under the observed pairing."""
        if a == b:
            return False
        ca, cb = self.clocks[a], self.clocks[b]
        pa = self._proc_index[self.exe.event(a).process]
        return ca[pa] <= cb[pa] and ca != cb and all(x <= y for x, y in zip(ca, cb))

    def concurrent(self, a: int, b: int) -> bool:
        return a != b and not self.happened_before(a, b) and not self.happened_before(b, a)

    def relation(self) -> BinaryRelation:
        n = len(self.exe)
        pairs = [
            (a, b)
            for a in range(n)
            for b in range(n)
            if a != b and self.happened_before(a, b)
        ]
        return BinaryRelation(range(n), pairs)
