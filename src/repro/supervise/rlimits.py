"""Hard OS resource caps for worker processes.

The paper guarantees that some pairs are exponentially expensive; a
cooperative :class:`~repro.budget.Budget` bounds the *search* but not
the *process* -- a memo table can still balloon between budget checks,
and a genuine bug in the search can spin forever.  Workers therefore
run under kernel-enforced ``setrlimit`` caps: exceeding the address
space limit makes allocations fail with :class:`MemoryError` (which the
worker reports gracefully as an ``unknown`` pair with resource
``"memory"``), and exceeding the CPU limit gets the process killed by
the OS -- either way the *host* survives and the scan keeps draining.

``resource`` is POSIX-only; on platforms without it the caps silently
do not apply (the pool still isolates crashes -- a dead worker never
takes the parent down).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

try:  # POSIX only; Windows has no setrlimit
    import resource as _resource
except ImportError:  # pragma: no cover - exercised only off-POSIX
    _resource = None

# canonical resource names recorded in `unknown` classifications,
# extending repro.budget's "states"/"deadline"
MEMORY = "memory"
CPU = "cpu"


@dataclass(frozen=True)
class ResourceLimits:
    """Per-worker kernel caps (``None`` = uncapped)."""

    max_memory_mb: Optional[int] = None
    max_cpu_seconds: Optional[int] = None

    def any(self) -> bool:
        return self.max_memory_mb is not None or self.max_cpu_seconds is not None


def _try_setrlimit(kind: int, soft: int, hard: int) -> bool:
    cur_soft, cur_hard = _resource.getrlimit(kind)
    if cur_hard != _resource.RLIM_INFINITY:
        # never ask for more than the inherited hard limit
        soft = min(soft, cur_hard)
        hard = min(hard, cur_hard)
    try:
        _resource.setrlimit(kind, (soft, hard))
        return True
    except (ValueError, OSError):  # pragma: no cover - platform quirks
        return False


def apply_limits(limits: Optional[ResourceLimits]) -> bool:
    """Apply ``limits`` to the *calling* process (run in the worker,
    before any real work).  Returns True iff at least one cap took."""
    if _resource is None or limits is None or not limits.any():
        return False
    applied = False
    if limits.max_memory_mb is not None:
        nbytes = int(limits.max_memory_mb) * 1024 * 1024
        applied |= _try_setrlimit(_resource.RLIMIT_AS, nbytes, nbytes)
    if limits.max_cpu_seconds is not None:
        secs = int(limits.max_cpu_seconds)
        # soft limit delivers SIGXCPU at `secs`; the hard limit leaves a
        # few seconds of grace before the unconditional SIGKILL
        applied |= _try_setrlimit(_resource.RLIMIT_CPU, secs, secs + 5)
    return applied


__all__ = ["ResourceLimits", "apply_limits", "MEMORY", "CPU"]
