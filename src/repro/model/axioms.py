"""Executable versions of the execution-model axioms.

Section 2 of the paper states that ``T`` and ``D`` "must satisfy
several axioms that describe properties a valid program execution must
possess" (citing the companion paper [10]) and omits them because the
hardness proofs do not need them.  A *library*, however, does: the
checks here are what keep hand-built executions (reductions, tests)
and trace-derived executions honest.

The axioms implemented:

* **Structure** -- processes partition ``E``; every non-root process is
  created by exactly one fork that precedes it; every join awaits
  processes whose creation precedes the join; the static order graph
  (program order + fork/join + ``D``) is acyclic.
* **Temporal order** -- ``T`` is a strict partial order that contains
  program order and the fork/join orderings, contains ``D`` (a
  dependence is a causal, hence temporal, ordering), and is an
  *interval order* (Lamport's "completes before" relation over
  intervals of real time is always 2+2-free; an arbitrary partial
  order need not be realizable by intervals).
* **Dependences** -- ``D`` is irreflexive and only relates events with
  conflicting shared accesses.
"""

from __future__ import annotations

from typing import List, Optional

from repro.model.events import EventKind
from repro.model.execution import ProgramExecution
from repro.util.graphs import is_acyclic, reachable_from
from repro.util.relations import BinaryRelation, is_strict_partial_order


class AxiomViolation(ValueError):
    """Raised by :func:`validate_execution` when an axiom fails."""


def check_structure(exe: ProgramExecution) -> List[str]:
    """Structural axioms; returns a list of human-readable violations."""
    problems: List[str] = []
    g = exe.static_order_graph(include_dependences=True)
    if not is_acyclic(g):
        problems.append("static order graph (program order + fork/join + D) is cyclic")
        return problems  # reachability below assumes a DAG

    for jeid, targets in exe.join_targets.items():
        below_forks = None
        for t in targets:
            feid = exe.parent_fork.get(t)
            if feid is None:
                problems.append(f"join {jeid} awaits root process {t!r} (never forked)")
                continue
            if below_forks is None:
                below_forks = reachable_from(g, feid)
            else:
                below_forks = reachable_from(g, feid)
            if jeid not in below_forks:
                problems.append(
                    f"join {jeid} awaits process {t!r} whose creating fork {feid} "
                    f"is not ordered before the join"
                )
    for p in exe.process_names:
        if not exe.process_events(p):
            problems.append(f"process {p!r} has no events")
    return problems


def check_dependences(exe: ProgramExecution, *, require_conflict: bool = True) -> List[str]:
    """``D`` axioms.

    ``require_conflict`` can be disabled for executions modelling
    external-environment interactions as dependences (footnote in
    Section 3.1), where the conflicting accesses are not visible in the
    event annotations.
    """
    problems: List[str] = []
    for a, b in sorted(exe.dependences):
        ea, eb = exe.event(a), exe.event(b)
        if a == b:
            problems.append(f"dependence ({a},{a}) is reflexive")
        if require_conflict and not ea.conflicts_with(eb):
            problems.append(
                f"dependence ({a},{b}) relates events without conflicting shared accesses"
            )
    return problems


def _is_interval_order(rel: BinaryRelation) -> bool:
    """2+2-freeness: no a->b, c->d with a!/->d and c!/->b.

    Fishburn's theorem: a partial order is an interval order iff it
    contains no induced 2+2.  ``T`` relations produced by real
    executions (events occupying real-time intervals) always pass.
    """
    pairs = list(rel.pairs)
    for a, b in pairs:
        for c, d in pairs:
            if a == c and b == d:
                continue
            if (a, d) not in rel and (c, b) not in rel:
                return False
    return True


def check_temporal_order(exe: ProgramExecution, temporal: BinaryRelation) -> List[str]:
    """Check a candidate ``T`` relation against the model axioms."""
    problems: List[str] = []
    if set(temporal.universe) != set(exe.eids):
        problems.append("temporal order not defined over the execution's event set")
        return problems
    if not is_strict_partial_order(temporal):
        problems.append("temporal order is not a strict partial order")
    # join edges order completions, not intervals: a join may begin
    # (and block) while awaited children still run, so T need not
    # contain them.  The graph's program-order edges come from the
    # execution's memory model, so a TSO trace is not required to
    # order a store before a later load of another variable.
    g = exe.static_order_graph(include_dependences=False, join_edges=False)
    for u, v in g.edges:
        if (u, v) not in temporal:
            eu, ev = exe.event(u), exe.event(v)
            problems.append(
                f"temporal order misses structural edge {eu.describe()} -> {ev.describe()}"
            )
    for a, b in exe.dependences:
        if (a, b) not in temporal:
            problems.append(f"temporal order misses dependence edge {a} -> {b}")
    if not _is_interval_order(temporal):
        problems.append("temporal order is not an interval order (contains a 2+2)")
    return problems


def validate_execution(
    exe: ProgramExecution,
    temporal: Optional[BinaryRelation] = None,
    *,
    require_conflict: bool = True,
    raise_on_error: bool = True,
) -> List[str]:
    """Run every applicable axiom check.

    Returns the list of violations (empty when the execution is valid);
    raises :class:`AxiomViolation` instead when ``raise_on_error``.
    """
    problems = check_structure(exe)
    problems += check_dependences(exe, require_conflict=require_conflict)
    if temporal is not None:
        problems += check_temporal_order(exe, temporal)
    if problems and raise_on_error:
        raise AxiomViolation("; ".join(problems))
    return problems
