"""Experiment T1 -- Table 1: the six ordering relations.

Regenerates Table 1 operationally, three independent ways, on a family
of small executions:

1. definition-level enumeration of the feasible set ``F`` (ground
   truth);
2. the exact search engine (the library's answer);
3. the algebraic dualities (``MCW = not COW`` etc.).

All three must agree pairwise (asserted).  The timed body is the
engine's full six-relation computation; a second benchmark times it
under the eager-begin timing-model ablation, where the
concurrent-with/ordered-with rows stop being degenerate (DESIGN.md
Section 4; the must-concurrent column is provably empty under
adversarial timing).
"""

from conftest import report, table

from repro.core.eager import EagerOrderingQueries
from repro.core.enumerate import count_serial_schedules, relations_by_enumeration
from repro.core.relations import ALL_RELATIONS, OrderingAnalyzer, RelationName
from repro.workloads.generators import random_semaphore_execution

SEEDS = range(6)


def executions():
    return [
        random_semaphore_execution(
            processes=2, events_per_process=2, semaphores=1, seed=s
        )
        for s in SEEDS
    ]


def compute_engine_relations(exes):
    return [OrderingAnalyzer(exe).all_relations() for exe in exes]


def test_table1_engine_vs_definition(benchmark):
    exes = executions()
    results = benchmark(compute_engine_relations, exes)

    rows = []
    for seed, (exe, engine_rels) in zip(SEEDS, zip(exes, results)):
        ref = relations_by_enumeration(exe)
        for name in ALL_RELATIONS:
            assert engine_rels[name] == ref[name], name
        # dualities straight from Table 1's definitions
        assert engine_rels[RelationName.MCW] == engine_rels[RelationName.COW].complement()
        assert engine_rels[RelationName.MOW] == engine_rels[RelationName.CCW].complement()
        size_f = count_serial_schedules(exe)
        assert size_f >= 1  # generators guarantee feasibility
        rows.append(
            [f"seed={seed}", len(exe), size_f]
            + [len(engine_rels[name]) for name in ALL_RELATIONS]
        )

    headers = ["execution", "|E|", "|F| (serial)"] + [n.name for n in ALL_RELATIONS]
    lines = table(headers, rows)
    lines.append("")
    lines.append("agreement: engine == enumeration == dualities on all rows")
    lines.append("note: MCW is empty / COW total on every feasible row -- the")
    lines.append("serialization corollary for the adversarial-timing model")
    report("table1_relations", lines)


def test_table1_eager_model_ablation(benchmark):
    """The same relations under eager begins: MCW/COW become
    informative, and the must/could containments still hold."""
    exes = executions()

    def compute():
        out = []
        for exe in exes:
            q = EagerOrderingQueries(exe)
            n = len(exe)
            counts = {name: 0 for name in ALL_RELATIONS}
            fns = {
                RelationName.MHB: q.mhb, RelationName.CHB: q.chb,
                RelationName.MCW: q.mcw, RelationName.CCW: q.ccw,
                RelationName.MOW: q.mow, RelationName.COW: q.cow,
            }
            for a in range(n):
                for b in range(n):
                    if a != b:
                        for name in ALL_RELATIONS:
                            counts[name] += fns[name](a, b)
            out.append(counts)
        return out

    results = benchmark(compute)

    rows = []
    nontrivial_mcw = 0
    for exe, counts in zip(exes, results):
        nontrivial_mcw += counts[RelationName.MCW]
        assert counts[RelationName.MHB] <= counts[RelationName.CHB]
        rows.append([len(exe)] + [counts[name] for name in ALL_RELATIONS])
    assert nontrivial_mcw > 0  # the eager model has must-concurrent pairs

    headers = ["|E|"] + [n.name for n in ALL_RELATIONS]
    lines = table(headers, rows)
    lines.append("")
    lines.append(f"eager model: {nontrivial_mcw} must-concurrent pairs across the family")
    report("table1_eager_ablation", lines)
