"""Unit tests for the execution builder."""

import pytest

from repro.model.builder import ExecutionBuilder
from repro.model.events import EventKind
from repro.model.execution import SyncStyle


class TestProcessConstruction:
    def test_duplicate_process_name_rejected(self):
        b = ExecutionBuilder()
        b.process("p")
        with pytest.raises(ValueError):
            b.process("p")

    def test_eids_dense_in_creation_order(self):
        b = ExecutionBuilder()
        p1, p2 = b.process("p1"), b.process("p2")
        assert p1.skip() == 0
        assert p2.skip() == 1
        assert p1.skip() == 2
        exe = b.build()
        assert [e.eid for e in exe.events] == [0, 1, 2]

    def test_indices_per_process(self):
        b = ExecutionBuilder()
        p = b.process("p")
        p.skip(), p.skip(), p.skip()
        exe = b.build()
        assert [exe.event(i).index for i in exe.process_events("p")] == [0, 1, 2]


class TestEventEmission:
    def test_compute_accesses(self):
        b = ExecutionBuilder()
        eid = b.process("p").compute(reads=["x"], writes=["y"])
        exe = b.build()
        assert exe.event(eid).reads == {"x"}
        assert exe.event(eid).writes == {"y"}

    def test_read_write_shortcuts(self):
        b = ExecutionBuilder()
        p = b.process("p")
        r, w = p.read("x"), p.write("x")
        exe = b.build()
        assert exe.event(r).reads == {"x"} and not exe.event(r).writes
        assert exe.event(w).writes == {"x"} and not exe.event(w).reads

    def test_semaphore_autodeclared_zero(self):
        b = ExecutionBuilder()
        b.process("p").sem_v("s")
        exe = b.build()
        assert exe.sem_initial("s") == 0

    def test_semaphore_initial_count(self):
        b = ExecutionBuilder()
        b.semaphore("s", 3)
        b.process("p").sem_p("s")
        assert b.build().sem_initial("s") == 3

    def test_negative_semaphore_rejected(self):
        with pytest.raises(ValueError):
            ExecutionBuilder().semaphore("s", -1)

    def test_event_variable_initially_posted(self):
        b = ExecutionBuilder()
        b.event_variable("v", posted=True)
        b.process("p").wait("v")
        assert b.build().var_initially_posted("v")

    def test_kinds(self):
        b = ExecutionBuilder()
        p = b.process("p")
        eids = {
            EventKind.COMPUTATION: p.skip(),
            EventKind.SEM_P: p.sem_p("s"),
            EventKind.SEM_V: p.sem_v("s"),
            EventKind.POST: p.post("v"),
            EventKind.WAIT: p.wait("v"),
            EventKind.CLEAR: p.clear("v"),
        }
        exe = b.build()
        for kind, eid in eids.items():
            assert exe.event(eid).kind is kind


class TestForkJoin:
    def test_fork_join_structure(self):
        b = ExecutionBuilder()
        main = b.process("main")
        f = main.fork()
        b.process("c1", parent=f).skip()
        b.process("c2", parent=f).skip()
        j = main.join(f)
        exe = b.build()
        assert exe.fork_children[f.eid] == ("c1", "c2")
        assert exe.join_targets[j] == ("c1", "c2")
        assert exe.parent_fork["c1"] == f.eid
        assert set(exe.root_processes) == {"main"}

    def test_join_named_processes(self):
        b = ExecutionBuilder()
        main = b.process("main")
        f = main.fork()
        b.process("c", parent=f).skip()
        j = main.join(["c"])
        assert b.build().join_targets[j] == ("c",)

    def test_unknown_fork_handle_rejected(self):
        b1, b2 = ExecutionBuilder(), ExecutionBuilder()
        f = b1.process("m").fork()
        with pytest.raises(ValueError):
            b2.process("c", parent=f)

    def test_nested_forks(self):
        b = ExecutionBuilder()
        main = b.process("main")
        f1 = main.fork()
        child = b.process("child", parent=f1)
        f2 = child.fork()
        b.process("grandchild", parent=f2).skip()
        child.join(f2)
        main.join(f1)
        exe = b.build()
        assert exe.parent_fork["grandchild"] == f2.eid
        assert exe.is_structurally_consistent()


class TestBuildValidation:
    def test_dependence_recorded(self):
        b = ExecutionBuilder()
        x = b.process("p").write("v")
        y = b.process("q").read("v")
        b.dependence(x, y)
        assert (x, y) in b.build().dependences

    def test_reflexive_dependence_rejected(self):
        b = ExecutionBuilder()
        x = b.process("p").write("v")
        b.dependence(x, x)
        with pytest.raises(ValueError):
            b.build()

    def test_observed_schedule_must_be_permutation(self):
        b = ExecutionBuilder()
        b.process("p").skip()
        b.process("q").skip()
        with pytest.raises(ValueError):
            b.build(observed_schedule=[0, 0])

    def test_sync_style(self):
        b = ExecutionBuilder()
        b.process("p").sem_v("s")
        assert b.build().sync_style is SyncStyle.SEMAPHORE
        b2 = ExecutionBuilder()
        b2.process("p").post("v")
        assert b2.build().sync_style is SyncStyle.EVENT
        b3 = ExecutionBuilder()
        b3.process("p").skip()
        assert b3.build().sync_style is SyncStyle.NONE
        b4 = ExecutionBuilder()
        p = b4.process("p")
        p.sem_v("s"), p.post("v")
        assert b4.build().sync_style is SyncStyle.MIXED
