"""The six ordering relations of Table 1 as pairwise queries.

=================  ==============================================  =======================
relation           definition (over feasible executions ``F``)     decision procedure
=================  ==============================================  =======================
``a CHB b``        exists P' in F with ``a ->T' b``                serial search, gate
                                                                   ``end(a) < begin(b)``
``a CCW b``        exists P' in F with ``a || b``                  interval search on
                                                                   ``{a, b}`` with mutual
                                                                   overlap gates
``a COW b``        exists P' in F with ``not (a || b)``            ``CHB(a,b) or CHB(b,a)``
``a MHB b``        for all P' in F, ``a ->T' b``                   ``not CHB(b,a) and
                                                                   not CCW(a,b)``
``a MCW b``        for all P' in F, ``a || b``                     ``not COW(a,b)``
``a MOW b``        for all P' in F, ``not (a || b)``               ``not CCW(a,b)``
=================  ==============================================  =======================

The duality identities on the right follow directly from the paper's
definitions because ``not (a ->T b)`` decomposes into ``b ->T a`` or
``a || b`` (Section 2's footnote notation); they are property-tested
against brute-force enumeration in ``tests/test_core_enumeration.py``.

Empty-``F`` semantics: if the execution cannot complete at all (a
hand-built deadlocking event set), universally quantified relations
hold vacuously and existentials are false.  Real traces always have
``F`` non-empty (the observed schedule is a member).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.budget import Budget, Verdict
from repro.core.engine import SearchStats, begin_point, end_point
from repro.core.witness import Witness
from repro.model.execution import ProgramExecution
from repro.solve.context import EMPTY_DROP, SolveContext
from repro.solve.planner import QueryPlanner


class OrderingQueries:
    """Pairwise exact ordering queries over one execution.

    Results of the two primitive existential searches (CHB and CCW) are
    cached per pair; the other four relations are derived algebraically
    so each pair costs at most three searches.

    Parameters mirror :class:`~repro.core.engine.FeasibilityEngine`;
    ``max_states`` bounds every individual search (raising
    :class:`~repro.core.engine.SearchBudgetExceeded` when exhausted),
    and ``budget`` adds wall-clock/memo limits shared by every search
    this object runs.

    Two API flavors coexist:

    * the boolean methods (``mhb``/``chb``/...) are exact and *raise*
      on budget exhaustion -- nothing wrong is ever cached, so retrying
      with a larger budget on the same object works;
    * the ``*_verdict`` methods never raise: they delegate to a
      :class:`~repro.solve.planner.QueryPlanner` running the solver
      portfolio's cheapest-first ladder (structural reachability, the
      observed schedule, cached witnesses, HMW, the exact engine),
      returning a three-valued :class:`~repro.budget.Verdict` before
      conceding ``UNKNOWN``.

    Both flavors share one :class:`~repro.solve.context.SolveContext`,
    so witnesses found by the boolean searches seed the planner's cache
    and vice versa.
    """

    def __init__(
        self,
        exe: ProgramExecution,
        *,
        include_dependences: bool = True,
        binary_semaphores: bool = False,
        max_states: Optional[int] = None,
        budget: Optional[Budget] = None,
        plan: Optional[Tuple[str, ...]] = None,
        por: str = "sleep",
    ) -> None:
        self.exe = exe
        self.plan = tuple(plan) if plan is not None else None
        self.stats = SearchStats()
        self.ctx = SolveContext(
            exe,
            include_dependences=include_dependences,
            binary_semaphores=binary_semaphores,
            stats=self.stats,
            por=por,
        )
        self.engine = self.ctx.engine_for(EMPTY_DROP)
        self.max_states = max_states
        self.budget = budget
        self._chb_cache: Dict[Tuple[int, int], Optional[Witness]] = {}
        self._ccw_cache: Dict[Tuple[int, int], Optional[Witness]] = {}
        self._base: Optional[Witness] = None
        self._base_computed = False
        self._planner: Optional[QueryPlanner] = None

    # ------------------------------------------------------------------
    @property
    def planner(self) -> QueryPlanner:
        """The tiered planner behind the ``*_verdict`` methods (lazy:
        the boolean exact paths never pay for it)."""
        if self._planner is None:
            if self.plan is not None:
                self._planner = QueryPlanner(self.ctx, self.plan)
            else:
                self._planner = QueryPlanner(self.ctx)
        return self._planner

    def statically_ordered(self, a: int, b: int) -> bool:
        """``a`` completes before ``b`` by structure alone (program
        order, fork/join, dependences) in *every* schedule.

        Implies ``a`` can happen-before ``b`` in any serial schedule
        and that ``b`` can never happen-before ``a`` -- but NOT that
        the two cannot overlap (a join overlaps children it awaits);
        use :meth:`statically_interval_ordered` for overlap reasoning.
        """
        return self.ctx.statically_ordered(a, b)

    def statically_interval_ordered(self, a: int, b: int) -> bool:
        """``end(a) < begin(b)`` in every schedule, by structure alone
        (program order, fork, dependences -- join edges excluded)."""
        return self.ctx.statically_interval_ordered(a, b)

    # ------------------------------------------------------------------
    def feasible_witness(self) -> Optional[Witness]:
        """Any member of ``F``, or None when the event set cannot complete."""
        if not self._base_computed:
            pts = self.engine.search(
                max_states=self.max_states, budget=self.budget, stats=self.stats
            )
            self._base = Witness(self.exe, pts) if pts is not None else None
            self._base_computed = True
            self.ctx.feasible = self._base is not None
            self.ctx.feasible_provenance = "exact"
            if pts is not None:
                self.ctx.witnesses.add(pts)
        return self._base

    def has_feasible_execution(self) -> bool:
        return self.feasible_witness() is not None

    # ------------------------------------------------------------------
    # primitive existentials (with witnesses)
    # ------------------------------------------------------------------
    def chb_witness(self, a: int, b: int) -> Optional[Witness]:
        """A feasible schedule in which ``a`` completes before ``b``
        begins, or None if no such schedule exists."""
        if a == b:
            return None
        key = (a, b)
        if key in self._chb_cache:
            return self._chb_cache[key]
        result: Optional[Witness] = None
        if self.has_feasible_execution():
            if self.statically_ordered(b, a):
                result = None  # b always precedes a; a ->T b impossible
            elif self.statically_ordered(a, b):
                result = self.feasible_witness()  # every schedule qualifies
            else:
                pts = self.engine.search(
                    constraints=[(end_point(a), begin_point(b))],
                    max_states=self.max_states,
                    budget=self.budget,
                    stats=self.stats,
                )
                result = Witness(self.exe, pts) if pts is not None else None
                if pts is not None:
                    self.ctx.witnesses.add(pts)
        self._chb_cache[key] = result
        return result

    def ccw_witness(self, a: int, b: int) -> Optional[Witness]:
        """A feasible schedule in which ``a`` and ``b`` overlap."""
        if a > b:
            a, b = b, a
        key = (a, b)
        if key in self._ccw_cache:
            return self._ccw_cache[key]
        result: Optional[Witness] = None
        if self.has_feasible_execution():
            if a == b:
                result = self.feasible_witness()  # an event overlaps itself
            elif self.statically_interval_ordered(a, b) or self.statically_interval_ordered(b, a):
                result = None  # structurally serialized; overlap impossible
            else:
                pts = self.engine.search(
                    interval_events=(a, b),
                    constraints=[
                        (begin_point(a), end_point(b)),
                        (begin_point(b), end_point(a)),
                    ],
                    max_states=self.max_states,
                    budget=self.budget,
                    stats=self.stats,
                )
                result = Witness(self.exe, pts) if pts is not None else None
                if pts is not None:
                    self.ctx.witnesses.add(pts)
        self._ccw_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # the six relations
    # ------------------------------------------------------------------
    def chb(self, a: int, b: int) -> bool:
        """Could-have-happened-before."""
        return self.chb_witness(a, b) is not None

    def ccw(self, a: int, b: int) -> bool:
        """Could-have-been-concurrent-with."""
        return self.ccw_witness(a, b) is not None

    def cow(self, a: int, b: int) -> bool:
        """Could-have-been-ordered-with (some feasible execution ran
        them one after the other, in either order)."""
        if a == b:
            return False  # an event always overlaps itself
        return self.chb(a, b) or self.chb(b, a)

    def mhb(self, a: int, b: int) -> bool:
        """Must-have-happened-before: ``a ->T b`` in every feasible
        execution."""
        if a == b:
            return not self.has_feasible_execution()  # vacuous truth only
        return not self.chb(b, a) and not self.ccw(a, b)

    def mcw(self, a: int, b: int) -> bool:
        """Must-have-been-concurrent-with."""
        if a == b:
            return True  # a || a holds in every execution (vacuously if F empty)
        return not self.cow(a, b)

    def mow(self, a: int, b: int) -> bool:
        """Must-have-been-ordered-with (never concurrent)."""
        return not self.ccw(a, b)

    # ------------------------------------------------------------------
    # auxiliary completion-order relations
    # ------------------------------------------------------------------
    # The paper's T orders *intervals*: ``a ->T b`` iff a completes
    # before b begins, so a blocked P overlaps the V that unblocks it
    # (the P has begun -- its first action, inspecting the count, has
    # happened).  The related-work algorithms (Helmbold/McDowell/Wang,
    # Emrath/Ghosh/Padua) reason about the order in which operations
    # *complete*.  These two queries decide that coarser ordering
    # exactly, giving the approximation benchmarks a like-for-like
    # exact baseline: every sound approximation must be a subset of
    # ``mcb``.

    def ccb(self, a: int, b: int) -> bool:
        """Could-complete-before: some feasible execution completes
        ``a`` before ``b``."""
        if a == b:
            return False
        if not self.has_feasible_execution():
            return False
        if self.statically_ordered(a, b):
            return True
        if self.statically_ordered(b, a):
            return False
        pts = self.engine.search(
            constraints=[(end_point(a), end_point(b))],
            max_states=self.max_states,
            budget=self.budget,
            stats=self.stats,
        )
        if pts is not None:
            self.ctx.witnesses.add(pts)
        return pts is not None

    def mcb(self, a: int, b: int) -> bool:
        """Must-complete-before: ``a`` completes before ``b`` in every
        feasible execution.  Completions are totally ordered within a
        schedule, so ``mcb(a, b) == not ccb(b, a)`` (vacuously true
        when no feasible execution exists).  Note ``mhb`` implies
        ``mcb`` but not conversely."""
        if a == b:
            return not self.has_feasible_execution()
        return not self.ccb(b, a)

    # ------------------------------------------------------------------
    # explanation helpers
    # ------------------------------------------------------------------
    def why_not_mhb(self, a: int, b: int) -> Optional[Witness]:
        """A counterexample schedule when ``a MHB b`` fails: either ``b``
        precedes ``a`` or they overlap.  None when ``a MHB b`` holds."""
        w = self.chb_witness(b, a)
        if w is not None:
            return w
        return self.ccw_witness(a, b)

    def relation_values(self, a: int, b: int) -> Dict[str, bool]:
        """All six relation values for one pair (used by examples)."""
        return {
            "MHB": self.mhb(a, b),
            "CHB": self.chb(a, b),
            "MCW": self.mcw(a, b),
            "CCW": self.ccw(a, b),
            "MOW": self.mow(a, b),
            "COW": self.cow(a, b),
        }

    # ------------------------------------------------------------------
    # three-valued (budget-tolerant) verdicts
    # ------------------------------------------------------------------
    # These delegate to the shared QueryPlanner: the portfolio ladder
    # tries structural reachability, the observed schedule, cached
    # witnesses and HMW before paying for an exact search, degrading to
    # UNKNOWN -- never a guess -- when the budget runs dry.  The budget
    # is read per call (``q.budget = None`` retries honestly: UNKNOWNs
    # are never memoized).

    def chb_verdict(self, a: int, b: int) -> Verdict:
        """Three-valued :meth:`chb` -- never raises."""
        return self.planner.chb_verdict(
            a, b, budget=self.budget, max_states=self.max_states
        )

    def ccw_verdict(self, a: int, b: int) -> Verdict:
        """Three-valued :meth:`ccw` -- never raises."""
        return self.planner.ccw_verdict(
            a, b, budget=self.budget, max_states=self.max_states
        )

    def ccb_verdict(self, a: int, b: int) -> Verdict:
        """Three-valued :meth:`ccb` -- never raises."""
        return self.planner.ccb_verdict(
            a, b, budget=self.budget, max_states=self.max_states
        )

    def cow_verdict(self, a: int, b: int) -> Verdict:
        return self.planner.cow_verdict(
            a, b, budget=self.budget, max_states=self.max_states
        )

    def mhb_verdict(self, a: int, b: int) -> Verdict:
        """Three-valued :meth:`mhb` -- never raises.

        Kleene conjunction of ``not chb(b, a)`` and ``not ccw(a, b)``:
        either conjunct failing refutes MHB even when the other blew
        its budget.
        """
        return self.planner.mhb_verdict(
            a, b, budget=self.budget, max_states=self.max_states
        )

    def mow_verdict(self, a: int, b: int) -> Verdict:
        return self.planner.mow_verdict(
            a, b, budget=self.budget, max_states=self.max_states
        )

    def mcw_verdict(self, a: int, b: int) -> Verdict:
        return self.planner.mcw_verdict(
            a, b, budget=self.budget, max_states=self.max_states
        )

    def mcb_verdict(self, a: int, b: int) -> Verdict:
        """Three-valued :meth:`mcb` -- never raises."""
        return self.planner.mcb_verdict(
            a, b, budget=self.budget, max_states=self.max_states
        )

    def relation_verdicts(self, a: int, b: int) -> Dict[str, Verdict]:
        """All six relations as verdicts (budget-tolerant counterpart
        of :meth:`relation_values`)."""
        return self.planner.relation_verdicts(
            a, b, budget=self.budget, max_states=self.max_states
        )
