"""Program-level analysis: quantifying over *all* executions of a program.

Section 4's third related-work strand (Callahan & Subhlok) asks a
different question from the rest of the paper: not "what orderings did
this observed execution pin down", but "what orderings are guaranteed
over **every** execution of the program" -- and proves that problem
co-NP-hard for static analysis.  This package answers the dynamic
version exactly, by exhaustively enumerating the program's schedule
tree:

* :func:`repro.analysis.explore.explore_program` -- every distinct
  maximal run (complete or deadlocked) of a program, via systematic
  scheduler-choice enumeration;
* :class:`repro.analysis.explore.ProgramAnalysis` -- event-set
  signatures across runs, deadlock census, and the guaranteed
  label-pair orderings over all complete runs.

Exhaustive by construction and therefore exponential -- which is the
point: the per-execution hardness theorems of Section 5 are what rule
out doing fundamentally better.
"""

from repro.analysis.explore import ExplorationResult, ProgramAnalysis, explore_program

__all__ = ["ExplorationResult", "ProgramAnalysis", "explore_program"]
