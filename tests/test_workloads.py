"""Tests for the canned programs and generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import FeasibilityEngine
from repro.core.queries import OrderingQueries
from repro.lang.interpreter import run_program
from repro.model.axioms import validate_execution
from repro.model.execution import SyncStyle
from repro.workloads.generators import (
    independent_processes_execution,
    random_computation_overlay,
    random_event_execution,
    random_semaphore_execution,
)
from repro.workloads.programs import (
    barrier_program,
    data_dependent_branch_program,
    dining_philosophers_program,
    figure1_execution,
    figure1_program,
    pipeline_program,
    producer_consumer_program,
)


class TestFigure1Workload:
    def test_observed_execution_shape(self):
        exe = figure1_execution()
        assert exe.sync_style is SyncStyle.EVENT
        labels = set(exe.labels)
        assert {"post_left", "x_assign", "x_test", "post_right", "wait_t3"} <= labels
        assert len(exe.dependences) == 1

    def test_alternate_schedule_takes_else_branch(self):
        # when t2 runs before t1's write, the event set differs (Wait
        # instead of Post) -- the paper's point about F3
        trace = run_program(figure1_program(), scheduler=None)
        from repro.lang.scheduler import PriorityScheduler

        trace2 = run_program(figure1_program(), PriorityScheduler(["main", "t2", "t3", "t1"]))
        exe2 = trace2.to_execution()
        assert "wait_else" in exe2.labels
        assert "post_right" not in exe2.labels


class TestCannedPrograms:
    @pytest.mark.parametrize("seed", range(4))
    def test_producer_consumer_all_items_flow(self, seed):
        trace = run_program(producer_consumer_program(3, buffer_size=2), seed)
        assert trace.final_shared["buf_head"] == 3

    def test_barrier_orders_outputs_after_go(self):
        exe = run_program(barrier_program(2), 5).to_execution()
        q = OrderingQueries(exe)
        go = [e.eid for e in exe.events if e.kind.name == "POST" and e.obj == "go"][0]
        outs = [e.eid for e in exe.events if "out" in (e.writes and next(iter(e.writes), "") or "")]
        outs = [e.eid for e in exe.events if any(v.startswith("out") for v in e.writes)]
        assert outs
        for o in outs:
            assert q.mhb(go, o)

    @pytest.mark.parametrize("seed", range(4))
    def test_dining_philosophers_deadlock_free(self, seed):
        trace = run_program(dining_philosophers_program(3), seed)
        assert all(trace.final_shared.get(f"meals{i}", 0) == 1 for i in range(3))

    def test_pipeline_propagates(self):
        trace = run_program(pipeline_program(4), 2)
        assert trace.final_shared["data4"] == 4

    def test_data_dependent_branch_feasible(self):
        for seed in range(4):
            exe = run_program(data_dependent_branch_program(), seed).to_execution()
            assert OrderingQueries(exe).has_feasible_execution()


class TestGenerators:
    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_semaphore_generator_feasible_and_valid(self, seed):
        exe = random_semaphore_execution(seed=seed)
        assert validate_execution(exe) == []
        assert FeasibilityEngine(exe).search() is not None

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_event_generator_feasible_and_valid(self, seed):
        exe = random_event_execution(seed=seed)
        assert validate_execution(exe) == []
        assert FeasibilityEngine(exe).search() is not None

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_overlay_generator_feasible_and_valid(self, seed):
        exe = random_computation_overlay(seed=seed)
        assert validate_execution(exe) == []
        assert FeasibilityEngine(exe).search() is not None

    def test_overlay_generator_produces_dependences(self):
        found = any(
            random_computation_overlay(seed=s).dependences for s in range(10)
        )
        assert found

    def test_generators_reproducible(self):
        a = random_semaphore_execution(seed=123)
        b = random_semaphore_execution(seed=123)
        assert [e.describe() for e in a.events] == [e.describe() for e in b.events]

    def test_independent_execution_shape(self):
        exe = independent_processes_execution(processes=3, events_per_process=2)
        assert len(exe) == 6
        assert exe.sync_style is SyncStyle.NONE

    def test_initial_counts_respected(self):
        exe = random_semaphore_execution(seed=0, initial_counts={"s0": 2})
        assert exe.sem_initial("s0") == 2
