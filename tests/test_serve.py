"""The ``repro serve`` daemon: store, admission, pool, HTTP, faults.

The fault-injection matrix from the issue is tested end-to-end: under
worker segv/oom/hang, a corrupt store file, a disk-full flush, a
disconnecting client and SIGTERM mid-request, the daemon never goes
down and never serves a wrong verdict -- degraded answers are an
explicit UNKNOWN carrying the resource that ran out.  The acceptance
criterion for the persistent witness store is asserted via planner
tier counts: a repeat query against a *restarted* daemon (fresh
workers, no warm in-process cache) must be answered by the ``witness``
tier with zero engine states.
"""

import json
import logging
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro import faults
from repro.model import serialize
from repro.races.detector import RaceDetector
from repro.serve import (
    AdmissionQueue,
    Draining,
    Overloaded,
    QueryDaemon,
    WitnessStore,
)
from repro.serve.store import STORE_FORMAT, STORE_VERSION
from repro.supervise import ResourceLimits, RetryPolicy
from repro.supervise.checkpoint import CheckpointJournal, scan_fingerprint
from repro.supervise.pool import QueryWorkerPool

from tests.test_supervise import SRC_DIR, fault_key, masking_execution


def _get(url, timeout=10.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.read().decode()


def _post(url, body, timeout=120.0, headers=None):
    req = urllib.request.Request(
        url, data=json.dumps(body).encode("utf-8"), method="POST"
    )
    for name, value in (headers or {}).items():
        req.add_header(name, value)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def _query_request(exe, relation="ccw", pair=None, **extra):
    """A QueryWorkerPool request dict, the daemon's wire shape."""
    if pair is None:
        pair = exe.conflicting_pairs()[0]
    if relation == "feasible":
        pair = (None, None)  # no event pair: fault injection can't key it
    req = {
        "fingerprint": serialize.execution_fingerprint(exe),
        "execution": serialize.execution_to_dict(exe),
        "relation": relation,
        "a": pair[0],
        "b": pair[1],
        "witnesses": [],
    }
    req.update(extra)
    return req


def _ccw_true_pair(exe):
    """An event pair whose CCW verdict is TRUE but which a *fresh*
    planner must hand to the exact engine -- so the first daemon query
    discovers a witness worth persisting, and a repeat answered by the
    ``witness`` tier proves the store (not the cheap tiers) served it."""
    import itertools

    from repro.solve.context import SolveContext
    from repro.solve.planner import QueryPlanner, tier_of

    fallback = None
    for a, b in itertools.combinations(sorted(exe.eids), 2):
        planner = QueryPlanner(SolveContext(exe))  # fresh: no warm cache
        v = planner.ccw_verdict(a, b)
        if str(v.truth) != "TRUE":
            continue
        if tier_of(v.provenance) == "engine":
            return a, b
        fallback = (a, b)
    if fallback is not None:
        return fallback
    raise AssertionError("no CCW-true pair in this execution")


def engine_states(planner_snapshot):
    tiers = (planner_snapshot or {}).get("tiers", {})
    return tiers.get("engine", {}).get("states", 0)


# ----------------------------------------------------------------------
class TestWitnessStore:
    def test_roundtrip_survives_restart(self, tmp_path):
        exe = masking_execution(2)
        store = WitnessStore(str(tmp_path))
        fp = store.put_execution(exe)
        assert fp in store
        assert store.points_for(fp)  # the observed schedule, validated
        assert store.flush() == 1
        reloaded = WitnessStore(str(tmp_path))
        assert reloaded.fingerprints() == [fp]
        assert reloaded.points_for(fp) == store.points_for(fp)
        assert reloaded.quarantined == 0

    def test_put_execution_is_idempotent(self, tmp_path):
        exe = masking_execution(2)
        store = WitnessStore(str(tmp_path))
        assert store.put_execution(exe) == store.put_execution(exe)
        assert store.stats()["executions"] == 1

    def test_corrupt_witness_file_quarantined_and_rebuilt(
        self, tmp_path, caplog
    ):
        exe = masking_execution(2)
        store = WitnessStore(str(tmp_path))
        fp = store.put_execution(exe)
        store.flush()
        wit_path = tmp_path / fp / "witnesses.json"
        wit_path.write_text("{ not json")
        with caplog.at_level(logging.WARNING, logger="repro.serve"):
            reloaded = WitnessStore(str(tmp_path))
        assert "quarantined" in caplog.text and "rebuilding" in caplog.text
        assert reloaded.quarantined == 1
        # evidence preserved, entry rebuilt from the source trace
        assert (tmp_path / fp / "witnesses.json.corrupt-1").exists()
        assert reloaded.points_for(fp)
        assert reloaded.stats()["dirty"] == 1
        assert reloaded.flush() == 1
        assert WitnessStore(str(tmp_path)).points_for(fp)

    def test_wrong_version_is_corruption_too(self, tmp_path, caplog):
        exe = masking_execution(2)
        store = WitnessStore(str(tmp_path))
        fp = store.put_execution(exe)
        store.flush()
        wit_path = tmp_path / fp / "witnesses.json"
        doc = json.loads(wit_path.read_text())
        doc["version"] = STORE_VERSION + 1
        wit_path.write_text(json.dumps(doc))
        with caplog.at_level(logging.WARNING, logger="repro.serve"):
            reloaded = WitnessStore(str(tmp_path))
        assert reloaded.quarantined == 1
        assert reloaded.points_for(fp)

    def test_unreadable_execution_quarantines_the_directory(
        self, tmp_path, caplog
    ):
        exe = masking_execution(2)
        store = WitnessStore(str(tmp_path))
        fp = store.put_execution(exe)
        store.flush()
        (tmp_path / fp / "execution.json").write_text("garbage")
        with caplog.at_level(logging.WARNING, logger="repro.serve"):
            reloaded = WitnessStore(str(tmp_path))
        assert "unreadable execution" in caplog.text
        assert reloaded.quarantined == 1
        assert fp not in reloaded
        assert (tmp_path / f"{fp}.corrupt-1").is_dir()

    def test_renamed_directory_fails_the_fingerprint_check(
        self, tmp_path, caplog
    ):
        exe = masking_execution(2)
        store = WitnessStore(str(tmp_path))
        fp = store.put_execution(exe)
        store.flush()
        fake = "0" * 64
        os.rename(tmp_path / fp, tmp_path / fake)
        with caplog.at_level(logging.WARNING, logger="repro.serve"):
            reloaded = WitnessStore(str(tmp_path))
        assert "hashes differently" in caplog.text
        assert reloaded.quarantined == 1
        assert fake not in reloaded

    def test_invalid_schedules_dropped_on_load(self, tmp_path, caplog):
        exe = masking_execution(2)
        store = WitnessStore(str(tmp_path))
        fp = store.put_execution(exe)
        store.flush()
        wit_path = tmp_path / fp / "witnesses.json"
        doc = json.loads(wit_path.read_text())
        # well-formed file, impossible schedule: must fail replay
        doc["witnesses"].append({"points": [[99, 0], [99, 1]]})
        wit_path.write_text(json.dumps(doc))
        with caplog.at_level(logging.WARNING, logger="repro.serve"):
            reloaded = WitnessStore(str(tmp_path))
        assert "failed replay validation" in caplog.text
        assert reloaded.quarantined == 0  # the file itself was honest
        assert reloaded.points_for(fp) == store.points_for(fp)
        assert reloaded.stats()["dirty"] == 1  # rewritten without the junk

    def test_add_points_revalidates(self, tmp_path):
        exe = masking_execution(2)
        store = WitnessStore(str(tmp_path))
        fp = store.put_execution(exe)
        before = len(store.points_for(fp))
        assert store.add_points(fp, [[[99, 0], [99, 1]]]) == 0
        assert len(store.points_for(fp)) == before
        assert store.add_points("f" * 64, store.points_for(fp)) == 0

    def test_failed_flush_keeps_serving_from_memory(
        self, tmp_path, caplog, monkeypatch
    ):
        from repro.serve import store as store_mod

        exe = masking_execution(2)
        store = WitnessStore(str(tmp_path))
        fp = store.put_execution(exe)

        def full_disk(*args, **kwargs):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(store_mod, "atomic_write_text", full_disk)
        with caplog.at_level(logging.WARNING, logger="repro.serve"):
            assert store.flush() == 0
        assert "flush" in caplog.text and "serving from memory" in caplog.text
        assert store.flush_failures == 1
        assert store.stats()["dirty"] == 1
        assert store.points_for(fp)  # still answering
        monkeypatch.undo()
        assert store.flush() == 1  # the next flush retries and succeeds
        assert store.stats()["dirty"] == 0


# ----------------------------------------------------------------------
class TestAdmissionQueue:
    def test_overload_prices_a_retry_after(self):
        q = AdmissionQueue(2, workers=1)
        q.try_enter()
        q.try_enter()
        with pytest.raises(Overloaded) as excinfo:
            q.try_enter()
        assert excinfo.value.retry_after >= 1.0
        q.release(0.5)
        q.try_enter()  # a freed slot admits again
        q.release(0.5)
        q.release(0.5)
        stats = q.stats()
        assert stats["admitted"] == 3 and stats["rejected_busy"] == 1

    def test_drain_refuses_and_waits_idle(self):
        q = AdmissionQueue(2)
        q.try_enter()
        q.begin_drain()
        with pytest.raises(Draining):
            q.try_enter()
        assert not q.wait_idle(0.05)  # one request still in flight
        q.release(0.1)
        assert q.wait_idle(1.0)
        assert q.stats()["rejected_draining"] == 1

    def test_service_time_feeds_the_estimate(self):
        q = AdmissionQueue(1, workers=1)
        for _ in range(8):
            q.try_enter()
            q.release(10.0)
        q.try_enter()
        with pytest.raises(Overloaded) as excinfo:
            q.try_enter()
        # the EWMA converged toward 10s, so the estimate reflects it
        assert excinfo.value.retry_after > 5.0

    def test_retry_after_is_capped(self):
        q = AdmissionQueue(1, workers=1, retry_after_cap=5.0)
        for _ in range(8):
            q.try_enter()
            q.release(100.0)  # drive the EWMA far past the cap
        q.try_enter()
        with pytest.raises(Overloaded) as excinfo:
            q.try_enter()
        assert excinfo.value.retry_after <= 5.0
        assert q.stats()["retry_after_cap"] == 5.0

    def test_cap_below_the_floor_is_refused(self):
        with pytest.raises(ValueError):
            AdmissionQueue(1, retry_after_cap=0.5)


# ----------------------------------------------------------------------
class TestQueryWorkerPool:
    def test_transient_crash_answered_by_replacement_worker(self):
        exe = masking_execution(2)
        pair = exe.conflicting_pairs()[0]
        with QueryWorkerPool(
            workers=1,
            retry=RetryPolicy(max_retries=1, backoff_base=0.01, jitter=0.5),
            faults={fault_key(pair): {"action": "segv", "attempts": 1}},
        ) as pool:
            tid = pool.submit(_query_request(exe, "ccw", pair, timeout=60.0))
            outcome = pool.result(tid, timeout=120.0)
            assert outcome["verdict"] in ("TRUE", "FALSE")  # a real answer
            stats = pool.stats()
            assert stats["crashes"] >= 1
            assert stats["retries"] >= 1
            assert stats["restarts"] >= 1

    def test_persistent_crash_is_explicit_unknown(self):
        exe = masking_execution(2)
        pair = exe.conflicting_pairs()[0]
        with QueryWorkerPool(
            workers=1,
            retry=RetryPolicy(max_retries=1, backoff_base=0.01, jitter=0.5),
            faults={fault_key(pair): {"action": "segv"}},
        ) as pool:
            tid = pool.submit(_query_request(exe, "ccw", pair, timeout=60.0))
            outcome = pool.result(tid, timeout=120.0)
        assert outcome["verdict"] == "UNKNOWN"
        assert outcome["resource"] == "crash"
        assert outcome["decided_by"] is None  # never a guessed tier

    def test_oom_retires_the_worker_and_degrades(self):
        exe = masking_execution(2)
        pair = exe.conflicting_pairs()[0]
        with QueryWorkerPool(
            workers=1,
            retry=RetryPolicy(max_retries=0),
            faults={fault_key(pair): {"action": "oom"}},
        ) as pool:
            tid = pool.submit(_query_request(exe, "ccw", pair, timeout=60.0))
            outcome = pool.result(tid, timeout=120.0)
            assert outcome["verdict"] == "UNKNOWN"
            assert outcome["resource"] == "memory"
            # the poisoned heap was retired, yet the pool still answers
            # (feasibility carries no event pair, so no fault fires)
            tid = pool.submit(_query_request(exe, "feasible", timeout=60.0))
            assert pool.result(tid, timeout=120.0)["verdict"] == "TRUE"

    def test_hung_worker_is_killed_at_the_wall(self):
        exe = masking_execution(2)
        pair = exe.conflicting_pairs()[0]
        with QueryWorkerPool(
            workers=1,
            retry=RetryPolicy(max_retries=0),
            wall_grace=0.5,
            faults={fault_key(pair): {"action": "hang", "seconds": 600}},
        ) as pool:
            tid = pool.submit(_query_request(exe, "ccw", pair, timeout=0.5))
            outcome = pool.result(tid, timeout=120.0)
        assert outcome["verdict"] == "UNKNOWN"
        assert outcome["resource"] == "deadline"

    def test_expired_while_queued_answers_without_dispatch(self):
        exe = masking_execution(2)
        with QueryWorkerPool(workers=1) as pool:
            # a deadline already in the past when the supervisor looks:
            # the job must be answered from the queue, never dispatched
            tid = pool.submit(_query_request(exe, "ccw", timeout=-1.0))
            outcome = pool.result(tid, timeout=60.0)
        assert outcome["verdict"] == "UNKNOWN"
        assert outcome["resource"] == "deadline"

    def test_close_finalizes_waiters_as_shutdown(self):
        exe = masking_execution(2)
        pair = exe.conflicting_pairs()[0]
        pool = QueryWorkerPool(
            workers=1,
            retry=RetryPolicy(max_retries=0),
            faults={fault_key(pair): {"action": "hang", "seconds": 600}},
        )
        tid = pool.submit(_query_request(exe, "ccw", pair, timeout=300.0))
        time.sleep(0.2)  # give the supervisor a chance to dispatch
        pool.close(drain=False)
        outcome = pool.result(tid, timeout=10.0)
        assert outcome["verdict"] == "UNKNOWN"
        assert outcome["resource"] in ("shutdown", "crash")
        with pytest.raises(RuntimeError):
            pool.submit(_query_request(exe, "ccw", pair))


# ----------------------------------------------------------------------
@pytest.fixture()
def daemon_factory(tmp_path):
    """Build daemons over one shared store root; close them all."""
    daemons = []

    def build(**kwargs):
        store = WitnessStore(str(tmp_path / "store"))
        kwargs.setdefault("port", 0)
        kwargs.setdefault("workers", 1)
        kwargs.setdefault("default_timeout", 30.0)
        d = QueryDaemon(store, **kwargs).start()
        daemons.append(d)
        return d

    yield build
    for d in daemons:
        if d.state != "stopped":
            d.close(drain=False)


class TestQueryDaemon:
    def test_repeat_query_served_from_persistent_store(self, daemon_factory):
        """The acceptance criterion: the second daemon (fresh workers,
        nothing warm) answers from the on-disk witness store -- the
        witness tier, zero engine states."""
        exe = masking_execution(2)
        a, b = _ccw_true_pair(exe)
        d = daemon_factory()
        code, out, _ = _post(
            d.url("/executions"), serialize.execution_to_dict(exe)
        )
        assert code == 200 and out["witnesses"] >= 1
        fp = out["fingerprint"]
        code, q1, _ = _post(
            d.url("/query"),
            {"fingerprint": fp, "relation": "ccw", "a": a, "b": b},
        )
        assert code == 200 and q1["verdict"] == "TRUE"
        d.close()
        assert d.state == "stopped"
        # a RESTARTED daemon over the same --store directory
        d2 = daemon_factory()
        assert fp in d2.store
        code, q2, _ = _post(
            d2.url("/query"),
            {"fingerprint": fp, "relation": "ccw", "a": a, "b": b},
        )
        assert code == 200 and q2["verdict"] == "TRUE"
        assert q2["decided_by"] == "witness"
        assert engine_states(q2["planner"]) == 0
        assert "engine" not in q2["planner"]["tiers"]

    def test_inline_execution_is_stored_and_query_variants(
        self, daemon_factory
    ):
        exe = masking_execution(2)
        a, b = exe.conflicting_pairs()[0]
        d = daemon_factory()
        code, out, _ = _post(
            d.url("/query"),
            {
                "execution": serialize.execution_to_dict(exe),
                "relation": "race", "a": a, "b": b,
            },
        )
        assert code == 200
        assert out["verdict"] == "feasible"
        assert out["classification"]["status"] == "feasible"
        fp = out["fingerprint"]
        status, body = _get(d.url("/executions"))
        assert status == 200 and fp in json.loads(body)["executions"]
        code, out, _ = _post(
            d.url("/query"), {"fingerprint": fp, "relation": "feasible"}
        )
        assert code == 200 and out["verdict"] == "TRUE"
        code, out, _ = _post(
            d.url("/query"), {"fingerprint": fp, "relation": "mhb",
                              "a": a, "b": b},
        )
        assert code == 200 and out["verdict"] in ("TRUE", "FALSE")

    def test_memory_model_claims_are_strict(self, daemon_factory):
        """An explicit ``memory_model`` claim must match the execution:
        wrong claims are a hard 400 on put and query alike, and the two
        models' documents get distinct fingerprints."""
        exe = masking_execution(2)
        tso_exe = exe.with_memory_model("tso")
        d = daemon_factory()
        code, out, _ = _post(
            d.url("/executions"),
            {"execution": serialize.execution_to_dict(exe),
             "memory_model": "sc"},
        )
        assert code == 200 and out["memory_model"] == "sc"
        fp_sc = out["fingerprint"]
        code, out, _ = _post(
            d.url("/executions"),
            {"execution": serialize.execution_to_dict(tso_exe),
             "memory_model": "tso"},
        )
        assert code == 200 and out["memory_model"] == "tso"
        fp_tso = out["fingerprint"]
        assert fp_sc != fp_tso  # the model folds into the fingerprint
        # a wrong claim is a 400, on put and on query alike
        code, out, _ = _post(
            d.url("/executions"),
            {"execution": serialize.execution_to_dict(tso_exe),
             "memory_model": "sc"},
        )
        assert code == 400 and "mismatch" in out["error"]
        code, out, _ = _post(
            d.url("/query"),
            {"fingerprint": fp_tso, "memory_model": "sc",
             "relation": "feasible"},
        )
        assert code == 400 and "mismatch" in out["error"]
        code, out, _ = _post(
            d.url("/query"),
            {"fingerprint": fp_tso, "memory_model": "pso",
             "relation": "feasible"},
        )
        assert code == 400 and "unknown memory model" in out["error"]
        # a truthful claim answers normally and echoes the model
        code, out, _ = _post(
            d.url("/query"),
            {"fingerprint": fp_tso, "memory_model": "tso",
             "relation": "feasible"},
        )
        assert code == 200 and out["memory_model"] == "tso"

    def test_validation_answers_4xx_not_5xx(self, daemon_factory):
        exe = masking_execution(2)
        d = daemon_factory()
        _, out, _ = _post(
            d.url("/executions"), serialize.execution_to_dict(exe)
        )
        fp = out["fingerprint"]
        cases = [
            ({"fingerprint": "0" * 64, "relation": "ccw", "a": 0, "b": 1},
             404),
            ({"fingerprint": fp, "relation": "bogus"}, 400),
            ({"fingerprint": fp, "relation": "ccw"}, 400),  # missing a/b
            ({"fingerprint": fp, "relation": "ccw", "a": 0, "b": 10 ** 6},
             400),  # out of range
            ({"fingerprint": fp, "relation": "ccw", "a": 0, "b": 1,
              "timeout": "soon"}, 400),
            ({"relation": "ccw", "a": 0, "b": 1}, 400),  # no execution
            ({"execution": {"nope": 1}, "relation": "feasible"}, 400),
        ]
        for body, expected in cases:
            code, doc, _ = _post(d.url("/query"), body)
            assert code == expected, (body, doc)
            assert "error" in doc
        status, _ = _get(d.url("/healthz"))
        assert status == 200  # none of that shook the daemon

    def test_overload_gets_429_with_retry_after(self, daemon_factory):
        d = daemon_factory(queue_limit=1)
        d.admission.try_enter()  # hold the only slot
        try:
            code, doc, headers = _post(
                d.url("/query"), {"fingerprint": "0" * 64, "relation": "ccw",
                                  "a": 0, "b": 1},
            )
            assert code == 429
            assert int(headers["Retry-After"]) >= 1
            assert doc["retry_after_seconds"] >= 1
            assert doc["admission"]["rejected_busy"] == 1
        finally:
            d.admission.release(0.1)

    def test_drain_flips_readiness_and_refuses_queries(self, daemon_factory):
        exe = masking_execution(2)
        d = daemon_factory()
        _post(d.url("/executions"), serialize.execution_to_dict(exe))
        code, _ = _get(d.url("/readyz"))
        assert code == 200
        d.drain(grace=5.0)
        assert d.state == "draining"
        # alive (liveness) but not ready (readiness): stop routing here
        assert _get(d.url("/healthz"))[0] == 200
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(d.url("/readyz"))
        assert excinfo.value.code == 503
        code, doc, _ = _post(
            d.url("/query"), {"fingerprint": "0" * 64, "relation": "feasible"}
        )
        assert code == 503 and "draining" in doc["error"]
        # the store was made durable during the drain
        assert d.store.stats()["dirty"] == 0
        d.close()
        assert d.state == "stopped"

    def test_worker_killed_mid_query_still_completes(self, daemon_factory):
        """The CI smoke scenario, in-process: the first attempt dies by
        SIGSEGV, the replacement worker answers the same request."""
        exe = masking_execution(2)
        a, b = _ccw_true_pair(exe)
        d = daemon_factory(
            faults={fault_key((a, b)): {"action": "segv", "attempts": 1}},
            retry=RetryPolicy(max_retries=1, backoff_base=0.01, jitter=0.5),
        )
        _, out, _ = _post(
            d.url("/executions"), serialize.execution_to_dict(exe)
        )
        code, q, _ = _post(
            d.url("/query"),
            {"fingerprint": out["fingerprint"], "relation": "ccw",
             "a": a, "b": b},
        )
        assert code == 200 and q["verdict"] == "TRUE"
        assert d.pool.stats()["crashes"] >= 1
        assert d.pool.stats()["restarts"] >= 1

    def test_always_crashing_query_degrades_to_unknown(self, daemon_factory):
        exe = masking_execution(2)
        a, b = exe.conflicting_pairs()[0]
        d = daemon_factory(
            faults={fault_key((a, b)): {"action": "segv"}},
            retry=RetryPolicy(max_retries=1, backoff_base=0.01, jitter=0.5),
        )
        _, out, _ = _post(
            d.url("/executions"), serialize.execution_to_dict(exe)
        )
        code, q, _ = _post(
            d.url("/query"),
            {"fingerprint": out["fingerprint"], "relation": "ccw",
             "a": a, "b": b},
        )
        assert code == 200
        assert q["verdict"] == "UNKNOWN"
        assert q["resource"] == "crash"
        assert q["decided_by"] is None
        # ... and a healthy pair on the same daemon still answers
        code, q, _ = _post(
            d.url("/query"),
            {"fingerprint": out["fingerprint"], "relation": "feasible"},
        )
        assert code == 200 and q["verdict"] == "TRUE"

    def test_disconnecting_client_does_not_wedge_the_daemon(
        self, daemon_factory
    ):
        exe = masking_execution(2)
        d = daemon_factory()
        # promise 4096 body bytes, send 10, hang up
        sock = socket.create_connection((d.host, d.port), timeout=5.0)
        sock.sendall(
            b"POST /query HTTP/1.1\r\n"
            b"Host: x\r\nContent-Length: 4096\r\n\r\n0123456789"
        )
        sock.close()
        # bare newlines and a non-HTTP preamble on a second connection
        sock = socket.create_connection((d.host, d.port), timeout=5.0)
        sock.sendall(b"\x00\x01garbage\r\n\r\n")
        sock.close()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if _get(d.url("/healthz"))[0] == 200:
                break
            time.sleep(0.05)
        code, out, _ = _post(
            d.url("/executions"), serialize.execution_to_dict(exe)
        )
        assert code == 200 and out["fingerprint"] in d.store

    def test_status_and_metrics_render(self, daemon_factory):
        d = daemon_factory()
        status, body = _get(d.url("/status"))
        doc = json.loads(body)
        assert status == 200
        assert doc["service"] == "repro-serve"
        assert doc["state"] == "serving"
        assert {"requests", "admission", "pool", "store"} <= set(doc)
        status, body = _get(d.url("/metrics"))
        assert status == 200
        from tests.test_obs_server import _parse_prometheus

        samples = _parse_prometheus(body)
        assert samples["repro_serve_up"] == 1
        assert samples["repro_serve_ready"] == 1
        assert samples['repro_serve_rejected_total{reason="busy"}'] == 0

    def test_degraded_read_only_mode_then_recovery(self, daemon_factory):
        """The acceptance criterion for disk pressure: repeated flush
        failures flip the daemon into degraded read-only mode (reads
        keep answering from memory, writes bounce with 507, ``/readyz``
        says so), and when the disk takes durable writes again the
        background probe restores full service without a restart."""
        exe = masking_execution(2)
        d = daemon_factory(degraded_after=1, probe_interval=0.1)
        faults.arm("store.flush=enospc")
        code, out, _ = _post(
            d.url("/executions"), serialize.execution_to_dict(exe)
        )
        # accepted into memory; the flush behind it failed and flipped
        # the state before the response was written
        assert code == 200
        fp = out["fingerprint"]
        assert d.state == "degraded"
        status, body = _get(d.url("/readyz"))
        assert status == 200 and "degraded" in body
        # writes bounce with 507 Insufficient Storage ...
        code, err, _ = _post(
            d.url("/executions"),
            serialize.execution_to_dict(masking_execution(3)),
        )
        assert code == 507 and "read-only" in err["error"]
        # ... as do inline-execution queries (they imply a store write)
        code, err, _ = _post(
            d.url("/query"),
            {
                "execution": serialize.execution_to_dict(
                    masking_execution(4)
                ),
                "relation": "feasible",
            },
        )
        assert code == 507 and "fingerprint" in err["error"]
        # ... but queries over already-stored executions still answer
        a, b = _ccw_true_pair(exe)
        code, q, _ = _post(
            d.url("/query"),
            {"fingerprint": fp, "relation": "ccw", "a": a, "b": b},
        )
        assert code == 200 and q["verdict"] == "TRUE"
        # the disk comes back: the probe flushes the backlog and
        # restores full service
        faults.disarm()
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline and d.state != "serving":
            time.sleep(0.05)
        assert d.state == "serving"
        status, body = _get(d.url("/readyz"))
        assert status == 200 and body.strip() == "ready"
        status, body = _get(d.url("/status"))
        doc = json.loads(body)
        assert doc["degraded"]["recoveries"] == 1
        assert doc["degraded"]["rejected_read_only"] == 2
        assert doc["store"]["dirty"] == 0  # the backlog reached disk
        code, out, _ = _post(
            d.url("/executions"),
            serialize.execution_to_dict(masking_execution(3)),
        )
        assert code == 200  # writes are welcome again

    def test_oversized_body_is_413_and_the_connection_closes(
        self, daemon_factory
    ):
        d = daemon_factory()
        sock = socket.create_connection((d.host, d.port), timeout=10.0)
        try:
            sock.sendall(
                b"POST /executions HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 99999999999\r\n\r\n"
            )
            sock.settimeout(10.0)
            data = b""
            while b"\r\n\r\n" not in data:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                data += chunk
        finally:
            sock.close()
        head = data.split(b"\r\n\r\n", 1)[0].decode("latin-1")
        assert " 413 " in head.splitlines()[0]
        # the body was never read, so the connection must not be reused
        assert "connection: close" in head.lower()
        assert _get(d.url("/healthz"))[0] == 200

    def test_port_in_use_fails_eagerly_and_leaks_no_pool(self, tmp_path):
        taken = socket.socket()
        taken.bind(("127.0.0.1", 0))
        taken.listen(1)
        try:
            with pytest.raises(OSError):
                QueryDaemon(
                    WitnessStore(str(tmp_path / "s")),
                    port=taken.getsockname()[1],
                    workers=1,
                )
        finally:
            taken.close()


# ----------------------------------------------------------------------
class TestCrashBetweenJournalAndStoreFlush:
    def test_torn_journal_tail_and_missing_witness_file_both_recover(
        self, tmp_path, caplog
    ):
        """The crash window from the issue: the process died after a
        journal append but before the witness-store flush.  The journal
        has a torn final record; the store directory has the execution
        but no ``witnesses.json``.  Resume must drop exactly the torn
        record and the store must rebuild from the source trace."""
        exe = masking_execution(3)
        serial = RaceDetector(exe).feasible_races()
        fingerprint = scan_fingerprint(exe)
        journal_path = str(tmp_path / "scan.jsonl")
        journal = CheckpointJournal.open(journal_path, fingerprint)
        for c in serial.classifications[:-1]:
            journal.append(c)
        journal.close()
        # the torn write of the crash: half a record, no newline
        torn = serialize.classification_to_dict(serial.classifications[-1])
        torn["type"] = "pair"
        with open(journal_path, "a") as fh:
            fh.write(json.dumps(torn)[: len(json.dumps(torn)) // 2])
        # the store counterpart: execution durable, witnesses never were
        store_root = tmp_path / "store"
        fp = WitnessStore(str(store_root)).put_execution(exe)
        assert (store_root / fp / "execution.json").exists()
        assert not (store_root / fp / "witnesses.json").exists()

        # -- resume the journal: torn tail dropped, prefix intact ------
        resumed = CheckpointJournal.open(
            journal_path, fingerprint, resume=True
        )
        replayed = resumed.classifications(exe)
        assert len(replayed) == len(serial.classifications) - 1
        missing = [
            c for c in serial.classifications
            if (c.a, c.b) not in replayed
        ]
        assert len(missing) == 1
        resumed.append(missing[0])  # appends land on a fresh line
        resumed.close()
        final = CheckpointJournal.open(
            journal_path, fingerprint, resume=True
        ).classifications(exe)
        assert {
            pair: c.status for pair, c in final.items()
        } == {(c.a, c.b): c.status for c in serial.classifications}

        # -- reload the store: rebuilt from the source trace -----------
        with caplog.at_level(logging.INFO, logger="repro.serve"):
            store = WitnessStore(str(store_root))
        assert "no witness file" in caplog.text
        assert store.quarantined == 0  # absence is a crash, not corruption
        assert store.points_for(fp)  # the observed schedule, revalidated
        assert store.flush() == 1
        assert (store_root / fp / "witnesses.json").exists()
        doc = json.loads((store_root / fp / "witnesses.json").read_text())
        assert doc["format"] == STORE_FORMAT
        assert doc["fingerprint"] == fp


# ----------------------------------------------------------------------
needs_posix_kill = pytest.mark.skipif(
    not hasattr(os, "killpg"), reason="needs POSIX process groups"
)


def _spawn_daemon(store_dir, port, extra=()):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(port), "--store", str(store_dir),
            "--workers", "1", *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        start_new_session=True,
    )


def _free_port():
    s = socket.socket()
    s.bind(("127.0.0.1", 0))
    port = s.getsockname()[1]
    s.close()
    return port


def _wait_ready(port, timeout=60.0):
    deadline = time.monotonic() + timeout
    url = f"http://127.0.0.1:{port}/readyz"
    while time.monotonic() < deadline:
        try:
            if _get(url, timeout=2.0)[0] == 200:
                return
        except OSError:
            pass
        time.sleep(0.05)
    raise AssertionError("daemon never became ready")


@needs_posix_kill
class TestCliServeDaemon:
    def test_sigterm_after_crashy_query_drains_cleanly_exit_0(self, tmp_path):
        """The CI smoke job, as a test: serve, post, survive a worker
        SIGSEGV mid-query, answer the repeat from the store, then
        SIGTERM -> clean drain, exit 0."""
        exe = masking_execution(2)
        a, b = _ccw_true_pair(exe)
        port = _free_port()
        proc = _spawn_daemon(
            tmp_path / "store", port,
            extra=["--fault-spec",
                   json.dumps({f"{a},{b}": {"action": "segv",
                                            "attempts": 1}})],
        )
        try:
            _wait_ready(port)
            base = f"http://127.0.0.1:{port}"
            code, out, _ = _post(
                f"{base}/executions", serialize.execution_to_dict(exe)
            )
            assert code == 200
            fp = out["fingerprint"]
            # first attempt segfaults the worker; the replacement answers
            code, q, _ = _post(
                f"{base}/query",
                {"fingerprint": fp, "relation": "ccw", "a": a, "b": b},
            )
            assert code == 200 and q["verdict"] == "TRUE"
            status = json.loads(_get(f"{base}/status")[1])
            assert status["pool"]["crashes"] >= 1
            # repeat query: from the store, engine never runs
            code, q, _ = _post(
                f"{base}/query",
                {"fingerprint": fp, "relation": "ccw", "a": a, "b": b},
            )
            assert code == 200 and q["decided_by"] == "witness"
            assert engine_states(q["planner"]) == 0
            os.killpg(proc.pid, signal.SIGTERM)
            out_b, err_b = proc.communicate(timeout=120)
        finally:
            try:
                os.killpg(proc.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
        assert proc.returncode == 0, (out_b, err_b)
        assert b"drained cleanly" in err_b
        # the port was released with the daemon
        with pytest.raises(OSError):
            _get(f"http://127.0.0.1:{port}/healthz", timeout=2.0)
        # the drain flushed: witnesses are durable on disk
        wit = tmp_path / "store"
        files = list(wit.rglob("witnesses.json"))
        assert files, "drain did not flush the witness store"


# ----------------------------------------------------------------------
class TestRequestTracing:
    """Trace schema v3 end to end: request ids honored/minted/echoed
    (errors included), serve.* spans validate and re-aggregate to
    exactly the ``/status`` per-endpoint counts, the debug rings and
    latency histograms fill, a failing sink never fails a request, a
    slow client is counted and logged, and tracing is a pure observer."""

    def test_traced_daemon_end_to_end(self, daemon_factory, tmp_path):
        import re

        from repro.obs import JsonlTraceSink, iter_trace, summarize_serve_trace

        exe = masking_execution(2)
        a, b = exe.conflicting_pairs()[0]
        trace = str(tmp_path / "daemon-trace.jsonl")
        d = daemon_factory(tracer=JsonlTraceSink(trace))
        # a well-formed client id is honored: header echo and body alike
        code, out, hdrs = _post(
            d.url("/executions"), serialize.execution_to_dict(exe),
            headers={"X-Repro-Request-Id": "put-001"},
        )
        assert code == 200
        assert hdrs["X-Repro-Request-Id"] == "put-001"
        assert out["request_id"] == "put-001"
        fp = out["fingerprint"]
        # no client id: the daemon mints one and still echoes it
        code, q, hdrs = _post(
            d.url("/query"),
            {"fingerprint": fp, "relation": "race", "a": a, "b": b},
        )
        assert code == 200
        minted = hdrs["X-Repro-Request-Id"]
        assert re.fullmatch(r"[A-Za-z0-9._-]{1,64}", minted)
        assert q["request_id"] == minted
        # a malformed claim is replaced, never reflected back verbatim
        code, _, hdrs = _post(
            d.url("/query"), {"fingerprint": fp, "relation": "feasible"},
            headers={"X-Repro-Request-Id": "spaces are not ok"},
        )
        assert code == 200
        assert hdrs["X-Repro-Request-Id"] != "spaces are not ok"
        # errors carry the id too, on the header and in the body
        code, err, hdrs = _post(
            d.url("/query"), {"fingerprint": fp, "relation": "nope"},
            headers={"X-Repro-Request-Id": "err-1"},
        )
        assert code == 400
        assert hdrs["X-Repro-Request-Id"] == "err-1"
        assert err["request_id"] == "err-1"
        status, _body = _get(d.url("/executions"))
        assert status == 200
        http = json.loads(_get(d.url("/status"))[1])["http"]
        d.close()
        # the trace is valid v3 (iter_trace validates every record) ...
        records = list(iter_trace(trace))
        assert records[0]["version"] == 3
        # ... and re-aggregates to exactly the /status endpoint counts
        s = summarize_serve_trace(trace)
        assert s.requests == http
        assert s.requests == {
            "POST /executions": 1, "POST /query": 3, "GET /executions": 1,
        }
        assert s.statuses["POST /query"] == {"200": 2, "400": 1}
        by_kind = {}
        for rec in records:
            by_kind.setdefault(rec["kind"], []).append(rec)
        reqs = {rec["request_id"]: rec for rec in by_kind["serve.request"]}
        assert reqs["put-001"]["endpoint"] == "POST /executions"
        assert reqs["err-1"]["status"] == 400
        assert reqs[minted]["query_kind"] == "race"
        # the worker shipped its evaluation span home, and the daemon
        # stamped it with the request id the worker never knew
        evals = {rec["request_id"] for rec in by_kind["serve.worker.eval"]}
        assert minted in evals
        phases = {rec["kind"] for rec in records if rec["kind"].startswith("serve.")}
        assert {"serve.request", "serve.store.write", "serve.dispatch",
                "serve.admission.wait", "serve.response"} <= phases

    def test_debug_rings_and_latency_histograms(self, daemon_factory, caplog):
        exe = masking_execution(2)
        d = daemon_factory(
            slow_threshold=0.0, recent_capacity=2, slow_capacity=2
        )
        with caplog.at_level(logging.WARNING, logger="repro.serve"):
            code, out, _ = _post(
                d.url("/executions"), serialize.execution_to_dict(exe),
                headers={"X-Repro-Request-Id": "r1"},
            )
            assert code == 200
            for rid in ("r2", "r3"):
                code, _, _ = _post(
                    d.url("/query"),
                    {"fingerprint": out["fingerprint"],
                     "relation": "feasible"},
                    headers={"X-Repro-Request-Id": rid},
                )
                assert code == 200
        doc = json.loads(_get(d.url("/debug/requests"))[1])
        # bounded ring, most recent first (r1 was evicted by the cap)
        assert doc["capacity"] == 2
        assert [e["request_id"] for e in doc["requests"]] == ["r3", "r2"]
        entry = doc["requests"][0]
        assert entry["endpoint"] == "POST /query"
        assert entry["kind"] == "feasible"
        assert entry["status"] == 200
        assert "response" in entry["phases"]
        slow = json.loads(_get(d.url("/debug/slow"))[1])
        assert slow["slow_threshold_seconds"] == 0.0
        assert [e["request_id"] for e in slow["requests"]] == ["r3", "r2"]
        assert "slow request r1" in caplog.text
        body = _get(d.url("/metrics"))[1]
        assert ('repro_serve_request_seconds_bucket'
                '{endpoint="POST /query",kind="feasible"') in body
        assert 'repro_serve_request_seconds_count' in body
        assert 'repro_serve_phase_seconds_bucket' in body
        assert ('repro_serve_http_requests_total'
                '{endpoint="POST /executions"} 1') in body

    def test_failing_trace_sink_never_fails_a_request(
        self, daemon_factory, tmp_path
    ):
        """The obs.trace.write failpoint: every emit fails with EIO,
        every request still answers 200, and the drops are counted."""
        from repro.obs import JsonlTraceSink

        from tests.test_obs_server import _parse_prometheus

        exe = masking_execution(2)
        trace = str(tmp_path / "t.jsonl")
        d = daemon_factory(tracer=JsonlTraceSink(trace))
        faults.arm("obs.trace.write=eio")
        try:
            code, out, _ = _post(
                d.url("/executions"), serialize.execution_to_dict(exe)
            )
            assert code == 200
            code, q, _ = _post(
                d.url("/query"),
                {"fingerprint": out["fingerprint"], "relation": "feasible"},
            )
            assert code == 200 and q["verdict"] == "TRUE"
        finally:
            faults.disarm()
        obsv = json.loads(_get(d.url("/status"))[1])["observability"]
        assert obsv["trace_enabled"] is True
        # both requests' spans failed to write; all were counted
        assert obsv["trace_dropped"] >= 2
        samples = _parse_prometheus(_get(d.url("/metrics"))[1])
        assert samples["repro_serve_trace_dropped_total"] >= 2

    def test_slow_client_times_out_counted_and_logged(
        self, daemon_factory, caplog
    ):
        """serve/app.py's once-silent slow-client path: the read times
        out after --client-timeout, the client gets a 400 (with its
        request id echoed), and the disconnect is a metric + log line."""
        d = daemon_factory(client_timeout=0.5)
        with caplog.at_level(logging.WARNING, logger="repro.serve"):
            sock = socket.create_connection((d.host, d.port), timeout=10.0)
            try:
                # promise 4096 body bytes, send 10, then just... wait
                sock.sendall(
                    b"POST /query HTTP/1.1\r\nHost: x\r\n"
                    b"X-Repro-Request-Id: sloth-1\r\n"
                    b"Content-Length: 4096\r\n\r\n0123456789"
                )
                sock.settimeout(10.0)
                data = b""
                while b"\r\n\r\n" not in data:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    data += chunk
            finally:
                sock.close()
        head = data.split(b"\r\n\r\n", 1)[0].decode("latin-1")
        assert " 400 " in head.splitlines()[0]
        assert "x-repro-request-id: sloth-1" in head.lower()
        assert "sloth-1" in caplog.text
        obsv = json.loads(_get(d.url("/status"))[1])["observability"]
        assert obsv["client_disconnects"] >= 1
        assert obsv["client_timeout_seconds"] == 0.5
        from tests.test_obs_server import _parse_prometheus

        samples = _parse_prometheus(_get(d.url("/metrics"))[1])
        assert samples["repro_serve_client_disconnects_total"] >= 1

    def test_tracing_is_a_pure_observer(self, tmp_path):
        """Identical verdicts, provenance and classifications with
        tracing on or off -- over separate fresh stores, so neither run
        can warm the other."""
        from repro.obs import JsonlTraceSink

        exe = masking_execution(2)
        a, b = exe.conflicting_pairs()[0]

        def run(root, tracer):
            store = WitnessStore(str(tmp_path / root))
            d = QueryDaemon(
                store, port=0, workers=1, default_timeout=30.0,
                tracer=tracer,
            ).start()
            try:
                _, put, _ = _post(
                    d.url("/executions"), serialize.execution_to_dict(exe)
                )
                fp = put["fingerprint"]
                answers = []
                for req in (
                    {"relation": "race", "a": a, "b": b},
                    {"relation": "feasible"},
                    {"relation": "ccw", "a": a, "b": b},
                    {"relation": "race", "a": a, "b": b},  # repeat: witness tier
                ):
                    code, q, _ = _post(
                        d.url("/query"), dict(req, fingerprint=fp)
                    )
                    assert code == 200
                    answers.append(
                        (
                            q["verdict"],
                            q["decided_by"],
                            (q.get("classification") or {}).get("status"),
                        )
                    )
                return answers
            finally:
                d.close(drain=False)

        traced = run("store-a", JsonlTraceSink(str(tmp_path / "t.jsonl")))
        untraced = run("store-b", None)
        assert traced == untraced
