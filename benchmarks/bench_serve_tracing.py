"""Experiment O5 -- daemon request tracing is a pure observer.

The serving daemon's contract for ``--trace`` mirrors the search
profiler's: telemetry must never change an answer.  This study drives
the *same* query sequence through two daemons over separate fresh
witness stores -- one tracing every request into a JSONL sink, one
untraced -- and asserts:

* identical verdicts, identical ``decided_by`` provenance and
  identical race classifications, query by query (the observer
  property);
* the trace re-aggregates (``repro trace serve-summary``) to exactly
  the per-endpoint request counts the traced daemon's ``/status``
  document reports -- neither side over- nor under-counts;
* zero records dropped on a healthy disk (drops are for failing
  sinks, not steady state).

The cost column shows what the telemetry adds per request -- a few
spans' worth of dict-building and one buffered JSONL write, paid only
when tracing is on.
"""

import json
import tempfile
import time
import urllib.error
import urllib.request

from conftest import report, table

from repro.model import serialize
from repro.obs import JsonlTraceSink, iter_trace, summarize_serve_trace
from repro.serve import QueryDaemon, WitnessStore
from repro.workloads.programs import figure1_execution


def _post(url, body):
    req = urllib.request.Request(
        url, data=json.dumps(body).encode("utf-8"), method="POST"
    )
    try:
        with urllib.request.urlopen(req, timeout=120.0) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _get(url):
    with urllib.request.urlopen(url, timeout=10.0) as resp:
        return json.loads(resp.read())


def _drive(daemon, exe, pairs):
    """One fixed request sequence; returns the answer tuples that must
    be invariant under tracing, and the mean request latency."""
    answers = []
    t0 = time.perf_counter()
    code, put = _post(
        daemon.url("/executions"), serialize.execution_to_dict(exe)
    )
    assert code == 200
    fp = put["fingerprint"]
    requests = 1
    for _round in range(2):  # round 2 answers from the witness store
        for a, b in pairs:
            for relation in ("ccw", "race", "mhb"):
                code, q = _post(
                    daemon.url("/query"),
                    {"fingerprint": fp, "relation": relation, "a": a, "b": b},
                )
                assert code == 200
                requests += 1
                answers.append(
                    (
                        relation, a, b,
                        q["verdict"],
                        q["decided_by"],
                        (q.get("classification") or {}).get("status"),
                    )
                )
        code, q = _post(
            daemon.url("/query"), {"fingerprint": fp, "relation": "feasible"}
        )
        assert code == 200
        requests += 1
        answers.append(("feasible", None, None, q["verdict"],
                        q["decided_by"], None))
    elapsed = time.perf_counter() - t0
    return answers, requests, elapsed / requests


def run_study():
    exe = figure1_execution()
    pairs = exe.conflicting_pairs()[:3]
    out = {}
    with tempfile.TemporaryDirectory() as root:
        trace = f"{root}/daemon-trace.jsonl"
        traced = QueryDaemon(
            WitnessStore(f"{root}/store-traced"),
            port=0, workers=1, default_timeout=60.0,
            tracer=JsonlTraceSink(trace),
        ).start()
        try:
            out["traced"], out["n"], out["t_traced"] = _drive(
                traced, exe, pairs
            )
            status = _get(traced.url("/status"))
            out["status_http"] = status["http"]
            out["dropped"] = status["observability"]["trace_dropped"]
        finally:
            traced.close(drain=False)
        summary = summarize_serve_trace(trace)
        out["summary_requests"] = dict(summary.requests)
        out["spans"] = sum(1 for _ in iter_trace(trace)) - 1  # minus header
        out["summary_dropped"] = summary.dropped

        untraced = QueryDaemon(
            WitnessStore(f"{root}/store-plain"),
            port=0, workers=1, default_timeout=60.0,
        ).start()
        try:
            out["untraced"], _, out["t_untraced"] = _drive(
                untraced, exe, pairs
            )
        finally:
            untraced.close(drain=False)
    return out


def test_daemon_tracing_is_a_pure_observer(benchmark):
    out = benchmark(run_study)

    # the observer property: answer-for-answer identical
    assert out["traced"] == out["untraced"]
    # the analytics exactness property: serve-summary counts are the
    # /status per-endpoint counters, not an approximation of them
    assert out["summary_requests"] == out["status_http"]
    assert sum(out["status_http"].values()) == out["n"]
    # a healthy sink drops nothing
    assert out["dropped"] == 0 and out["summary_dropped"] == 0

    decided_by = {}
    for _rel, _a, _b, _v, tier, _cls in out["traced"]:
        decided_by[str(tier)] = decided_by.get(str(tier), 0) + 1
    lines = table(
        ["requests", "spans", "dropped", "traced req", "untraced req"],
        [[
            out["n"], out["spans"], out["dropped"],
            f"{out['t_traced'] * 1e3:.1f}ms",
            f"{out['t_untraced'] * 1e3:.1f}ms",
        ]],
    )
    lines.append("")
    lines.append(
        "decided_by (identical traced/untraced): "
        + " ".join(f"{k}={n}" for k, n in sorted(decided_by.items()))
    )
    lines.append(
        "verdicts, provenance and classifications are identical with"
    )
    lines.append(
        "tracing on or off, and serve-summary counts == /status counts"
    )
    report("serve_tracing", lines)
