"""Schedulers: who runs next on the simulated machine.

The interpreter asks the scheduler for one runnable process per step.
Deterministic replays use :class:`FixedScheduler`; randomized exploration
uses :class:`RandomScheduler` with a seed (every benchmark seeds its
schedulers so runs are reproducible); :class:`PriorityScheduler` builds
specific observed executions such as the Figure 1 scenario where "the
first created task completely executes before the other two".
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence


class Scheduler:
    """Chooses the next process to run from the runnable set."""

    def choose(self, runnable: Sequence[str], step: int) -> str:
        raise NotImplementedError

    def reset(self) -> None:
        """Called by the interpreter before a run starts."""


class RoundRobinScheduler(Scheduler):
    """Cycles through processes in name order."""

    def __init__(self) -> None:
        self._last: Optional[str] = None

    def reset(self) -> None:
        self._last = None

    def choose(self, runnable: Sequence[str], step: int) -> str:
        ordered = sorted(runnable)
        if self._last is not None:
            after = [p for p in ordered if p > self._last]
            choice = after[0] if after else ordered[0]
        else:
            choice = ordered[0]
        self._last = choice
        return choice


class RandomScheduler(Scheduler):
    """Uniform random choice with a reproducible seed."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    def choose(self, runnable: Sequence[str], step: int) -> str:
        return self._rng.choice(sorted(runnable))


class FixedScheduler(Scheduler):
    """Replays an explicit sequence of process names.

    Raises if the scripted process is not runnable at its step -- a
    replay that diverges indicates the program or trace changed.
    """

    def __init__(self, order: Sequence[str]) -> None:
        self.order = list(order)
        self._i = 0

    def reset(self) -> None:
        self._i = 0

    def choose(self, runnable: Sequence[str], step: int) -> str:
        if self._i >= len(self.order):
            raise RuntimeError(f"fixed schedule exhausted at step {step}")
        want = self.order[self._i]
        self._i += 1
        if want not in runnable:
            raise RuntimeError(
                f"fixed schedule wants {want!r} at step {step} "
                f"but runnable set is {sorted(runnable)}"
            )
        return want


class PriorityScheduler(Scheduler):
    """Always runs the earliest process in a priority list.

    Processes not listed rank below all listed ones, ordered by name.
    Ties inside the unlisted group break alphabetically, so the
    schedule is fully deterministic.
    """

    def __init__(self, priority: Sequence[str]) -> None:
        self.priority = list(priority)
        self._rank = {name: i for i, name in enumerate(self.priority)}

    def choose(self, runnable: Sequence[str], step: int) -> str:
        return min(sorted(runnable), key=lambda p: (self._rank.get(p, len(self._rank)), p))
