"""Theorem 1/2 construction: 3CNFSAT -> counting-semaphore execution.

From a formula with ``n`` variables and ``m`` clauses the paper builds
a program of ``3n + 3m + 2`` processes over ``3n + m + 1`` semaphores
(all initialized to zero) whose execution simulates a nondeterministic
evaluation of ``B``:

for each variable ``X_i`` (semaphores ``Xi+``, ``Xi-`` for the two
literals and a one-token gate ``Ai``)::

    true_i:  P(Ai); V(Xi+) x occ(Xi)      -- "guess X_i = True"
    false_i: P(Ai); V(Xi-) x occ(~Xi)     -- "guess X_i = False"
    gate_i:  V(Ai); P(Pass2); V(Ai)       -- one guess per pass

for each clause ``C_j`` with literals ``L1, L2, L3``::

    clause_j_k:  P(Lk); V(Cj)             -- k = 1, 2, 3

and the two marker processes::

    alpha: a: skip; V(Pass2) x n
    beta:  P(C1); ...; P(Cm); b: skip

During the first pass exactly one of ``true_i``/``false_i`` can run per
variable (the gate holds one token), so the ``V(Cj)`` signals issued
before ``a`` executes correspond exactly to clauses satisfied by some
consistent truth assignment.  ``b`` can therefore execute before ``a``
iff ``B`` is satisfiable; if ``B`` is unsatisfiable, some ``P(Cj)``
can only be satisfied during the second pass, which ``a`` gates --
hence ``a MHB b``.  The second pass (``Pass2`` tokens re-arming the
gates) guarantees every execution can run to completion, so the event
set is always feasible.

The program has no conditionals and no shared variables: every
execution performs the same events with the same (empty) ``D``.
"""

from __future__ import annotations

from repro.model.builder import ExecutionBuilder
from repro.model.execution import SyncStyle
from repro.reductions.common import SatReduction
from repro.sat.cnf import CNF


def _literal_semaphore(lit: int) -> str:
    return f"X{abs(lit)}{'+' if lit > 0 else '-'}"


def semaphore_reduction(cnf: CNF) -> SatReduction:
    """Build the Theorem 1 execution for ``cnf``.

    The formula need not be exactly 3-CNF -- the construction
    generalizes to any clause width by creating one process per literal
    occurrence -- but the paper's complexity claim is stated for 3-CNF
    (apply :meth:`~repro.sat.cnf.CNF.to_3cnf` first to match it
    exactly).
    """
    if any(len(c) == 0 for c in cnf.clauses):
        raise ValueError("empty clauses are not representable (pad via to_3cnf)")

    b = ExecutionBuilder()
    occurrences = cnf.literal_occurrences()
    n = cnf.num_vars
    m = len(cnf.clauses)

    # declare semaphores (all zero-initialized, as in the paper)
    for i in range(1, n + 1):
        b.semaphore(f"A{i}", 0)
        b.semaphore(_literal_semaphore(i), 0)
        b.semaphore(_literal_semaphore(-i), 0)
    for j in range(1, m + 1):
        b.semaphore(f"C{j}", 0)
    b.semaphore("Pass2", 0)

    # variable gadgets ---------------------------------------------------
    for i in range(1, n + 1):
        true_p = b.process(f"var{i}_true")
        true_p.sem_p(f"A{i}")
        for _ in range(occurrences.get(i, 0)):
            true_p.sem_v(_literal_semaphore(i))

        false_p = b.process(f"var{i}_false")
        false_p.sem_p(f"A{i}")
        for _ in range(occurrences.get(-i, 0)):
            false_p.sem_v(_literal_semaphore(-i))

        gate = b.process(f"var{i}_gate")
        gate.sem_v(f"A{i}")
        gate.sem_p("Pass2")
        gate.sem_v(f"A{i}")

    # clause gadgets -------------------------------------------------------
    for j, clause in enumerate(cnf.clauses, start=1):
        for k, lit in enumerate(clause, start=1):
            proc = b.process(f"clause{j}_lit{k}")
            proc.sem_p(_literal_semaphore(lit))
            proc.sem_v(f"C{j}")

    # marker processes -----------------------------------------------------
    alpha = b.process("alpha")
    a_eid = alpha.skip(label="a")
    for _ in range(n):
        alpha.sem_v("Pass2")

    beta = b.process("beta")
    for j in range(1, m + 1):
        beta.sem_p(f"C{j}")
    b_eid = beta.skip(label="b")

    exe = b.build()
    return SatReduction(cnf=cnf, execution=exe, a=a_eid, b=b_eid, style=SyncStyle.SEMAPHORE)
