"""Persistent on-disk witness store, keyed by execution fingerprint.

The cross-query :class:`~repro.solve.witnesses.WitnessCache` makes a
*scan* cheap; the daemon makes it *durable*: witnesses found for one
client's query answer the next client's, across daemon restarts.  The
layout is one directory per stored execution::

    <root>/<fingerprint>/execution.json   -- the source trace
    <root>/<fingerprint>/witnesses.json   -- validated schedules

Robustness rules, in order of importance:

* **Never trust the disk.**  Every loaded schedule replays through the
  reference semantics before it is served (the in-memory cache is the
  single soundness gate); a schedule that does not replay is dropped
  and the file marked for rewrite.
* **Never serve a corrupt entry, never delete evidence.**  A directory
  whose ``execution.json`` is unreadable -- or whose content hashes to
  a different fingerprint than its name -- is *quarantined* (renamed
  ``<name>.corrupt-N``) and skipped with a logged warning.  A corrupt
  ``witnesses.json`` is quarantined the same way and then **rebuilt
  from the source trace**: the execution's own observed schedule is
  re-validated into a fresh witness file, so the entry keeps answering
  (degraded to one witness) instead of disappearing.
* **Atomic, durable writes.**  Files are written via
  :func:`~repro.util.fileio.atomic_write_text` with ``durable=True``
  (tmp + fsync + rename + directory fsync), so a crash or a full disk
  mid-flush leaves the previous complete version in place, never a
  torn one.  A failed flush logs, counts, and leaves the entry dirty
  for the next flush -- the daemon keeps serving from memory.
* **Bounded size.**  ``max_entries`` / ``max_bytes`` cap the corpus;
  past the cap the least-recently-used execution is **evicted** --
  its directory deleted outright, *not* quarantined, because an
  evicted entry is not evidence of anything: the client that needs it
  re-posts the execution and the observed-schedule witness is rebuilt
  on the spot.  Eviction never touches the entry that triggered it.
* **Crash-safe compaction.**  Quarantined ``*.corrupt-N`` debris and
  eviction leftovers accumulate; :meth:`compact` rewrites the live
  entries into a fresh generation directory and swaps it in with two
  renames.  A SIGKILL at *any* instant leaves either the old
  generation or the new one recoverable -- never a mix -- and both
  :meth:`compact` itself (on an injected failure) and the constructor
  (on the next open) run the same recovery.

Failpoints (see :mod:`repro.faults`): ``store.put``, ``store.flush``,
``store.evict``, ``store.compact.built``, ``store.compact.swapped-out``
and ``store.compact.swapped-in`` let a chaos schedule fail or kill any
of those steps deterministically.

Capacity: each entry's cache holds the most recent ``capacity``
schedules (FIFO, like the scan cache); the store persists what is
resident at flush time.
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import re
import shutil
import threading
from typing import Any, Dict, List, Optional

from repro import faults
from repro.core.engine import Point
from repro.model import serialize
from repro.model.execution import ProgramExecution
from repro.solve.witnesses import WitnessCache
from repro.util.fileio import atomic_write_text, fsync_dir

log = logging.getLogger("repro.serve")

STORE_FORMAT = "repro-witness-store"
STORE_VERSION = 1

_FINGERPRINT_RE = re.compile(r"^[0-9a-f]{64}$")

#: suffixes of the compaction generation directories (siblings of the
#: store root, so the final swap is two same-filesystem renames)
_COMPACT_NEW = ".compact-new"
_COMPACT_OLD = ".compact-old"


def _quarantine(path: str) -> str:
    """Move a corrupt file or directory aside (never delete evidence)."""
    for n in itertools.count(1):
        target = f"{path}.corrupt-{n}"
        if not os.path.exists(target):
            os.replace(path, target)
            return target
    raise AssertionError("unreachable")  # pragma: no cover


def recover_compaction(root: str) -> Optional[str]:
    """Resolve a compaction interrupted at any point (crash, SIGKILL,
    injected fault) into exactly one complete generation at ``root``.

    Returns a short description of what was recovered (for logging), or
    ``None`` when there was nothing to do.  The possible on-disk states
    and their resolution:

    * ``root`` exists, ``root.compact-new`` exists -- the crash hit
      while *building* the new generation; the root was never touched.
      Drop the partial build.
    * ``root`` exists, ``root.compact-old`` exists -- the crash hit
      after the new generation was swapped in but before the old one
      was deleted.  The root IS the new generation; drop the old.
    * ``root`` missing, ``root.compact-old`` exists -- the crash hit
      between the two renames.  Restore the old generation (it is a
      superset of the new one, which only ever holds live entries) and
      drop the new if present.
    * ``root`` missing, only ``root.compact-new`` exists -- cannot be
      produced by the compaction sequence, but an operator moving
      directories by hand can get here; adopt the new generation
      rather than refuse to start.
    """
    old_root, new_root = root + _COMPACT_OLD, root + _COMPACT_NEW
    if os.path.isdir(root):
        recovered = None
        if os.path.isdir(old_root):
            shutil.rmtree(old_root)
            recovered = "dropped superseded old generation"
        if os.path.isdir(new_root):
            shutil.rmtree(new_root)
            recovered = "dropped partial new generation"
        return recovered
    if os.path.isdir(old_root):
        os.rename(old_root, root)
        if os.path.isdir(new_root):
            shutil.rmtree(new_root)
        return "restored previous generation after interrupted compaction"
    if os.path.isdir(new_root):
        os.rename(new_root, root)
        return "adopted new generation after interrupted compaction"
    return None


class _StoreEntry:
    """One stored execution: its model plus the validating cache."""

    def __init__(self, exe: ProgramExecution, *, capacity: int) -> None:
        self.exe = exe
        self.cache = WitnessCache(exe, capacity=capacity)
        self.dirty = False
        self.last_used = 0  # LRU clock value, maintained by the store
        self.bytes_on_disk = 0  # last known execution + witness bytes

    def add_observed(self) -> None:
        """Re-derive the base witness from the source trace itself (the
        observed schedule is a member of ``F`` whenever it replays)."""
        sched = self.exe.observed_schedule
        if sched is None:
            return
        points = []
        for eid in sched:
            points.append(Point(eid, False))
            points.append(Point(eid, True))
        self.cache.add(points)

    def schedules(self) -> List[List[List[int]]]:
        return self.cache.points_since(0)  # every resident entry

    def execution_text(self) -> str:
        return serialize.dumps(self.exe) + "\n"

    def witnesses_text(self, fp: str) -> str:
        doc = {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "fingerprint": fp,
            "witnesses": [{"points": sched} for sched in self.schedules()],
        }
        return json.dumps(doc, sort_keys=True) + "\n"


class WitnessStore:
    """Fingerprint-keyed persistent executions + validated witnesses.

    Thread-safe (one re-entrant lock): HTTP handler threads store
    executions and fetch/persist witnesses while the drain path
    flushes.  All mutations are in-memory first; :meth:`flush` makes
    them durable (and is called after every mutation by the daemon,
    plus once more on drain).

    ``max_entries`` / ``max_bytes`` bound the corpus (LRU eviction, see
    the module docstring); ``None`` leaves the axis uncapped.
    """

    def __init__(
        self,
        root: str,
        *,
        capacity: int = 256,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.root = root
        self.capacity = capacity
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._lock = threading.RLock()
        self._entries: Dict[str, _StoreEntry] = {}
        self._clock = 0  # LRU ticks; bumped on every entry touch
        self.quarantined = 0
        self.flush_failures = 0
        #: failed flush *passes* since the last pass that wrote
        #: something durably -- the daemon's degraded-mode trigger
        self.consecutive_flush_failures = 0
        self.evictions = 0
        self.compactions = 0
        recovered = recover_compaction(root)
        if recovered:
            log.warning("witness store: %s", recovered)
        os.makedirs(root, exist_ok=True)
        self._load_all()
        with self._lock:
            self._evict_over_cap()

    # -- loading (constructor only) ------------------------------------
    def _load_all(self) -> None:
        for name in sorted(os.listdir(self.root)):
            path = os.path.join(self.root, name)
            if not os.path.isdir(path) or not _FINGERPRINT_RE.match(name):
                continue  # quarantined remnants, tmp files, strangers
            self._load_entry(name, path)

    def _load_entry(self, fp: str, path: str) -> None:
        exe_path = os.path.join(path, "execution.json")
        try:
            with open(exe_path) as fh:
                exe = serialize.execution_from_dict(json.load(fh))
        except (OSError, ValueError, KeyError, TypeError) as exc:
            where = _quarantine(path)
            self.quarantined += 1
            log.warning(
                "witness store: unreadable execution %s (%s); quarantined "
                "to %s", fp, exc, where,
            )
            return
        if serialize.execution_fingerprint(exe) != fp:
            where = _quarantine(path)
            self.quarantined += 1
            log.warning(
                "witness store: execution under %s hashes differently "
                "(renamed or tampered directory); quarantined to %s",
                fp, where,
            )
            return
        entry = _StoreEntry(exe, capacity=self.capacity)
        wit_path = os.path.join(path, "witnesses.json")
        schedules: List[Any] = []
        if os.path.exists(wit_path):
            try:
                with open(wit_path) as fh:
                    doc = json.load(fh)
                if (
                    not isinstance(doc, dict)
                    or doc.get("format") != STORE_FORMAT
                    or doc.get("version") != STORE_VERSION
                    or doc.get("fingerprint") != fp
                ):
                    raise ValueError("wrong format/version/fingerprint")
                schedules = [w["points"] for w in doc["witnesses"]]
            except (OSError, ValueError, KeyError, TypeError) as exc:
                where = _quarantine(wit_path)
                self.quarantined += 1
                entry.dirty = True  # rebuild from the source trace
                log.warning(
                    "witness store: corrupt witnesses for %s (%s); "
                    "quarantined to %s, rebuilding from source trace",
                    fp, exc, where,
                )
        else:
            # e.g. a crash between storing the execution and the first
            # flush: not corruption, just rebuild
            entry.dirty = True
            log.info(
                "witness store: no witness file for %s; rebuilding from "
                "source trace", fp,
            )
        rejected_before = entry.cache.rejected
        entry.cache.seed(schedules)
        if entry.cache.rejected > rejected_before:
            bad = entry.cache.rejected - rejected_before
            entry.dirty = True  # rewrite without the invalid schedules
            log.warning(
                "witness store: %d invalid schedule(s) for %s dropped on "
                "load (failed replay validation)", bad, fp,
            )
        entry.add_observed()
        entry.bytes_on_disk = self._entry_disk_bytes(path)
        self._touch(entry)
        self._entries[fp] = entry

    @staticmethod
    def _entry_disk_bytes(path: str) -> int:
        total = 0
        for name in ("execution.json", "witnesses.json"):
            try:
                total += os.path.getsize(os.path.join(path, name))
            except OSError:
                pass
        return total

    # -- LRU + eviction (call with the lock held) -----------------------
    def _touch(self, entry: _StoreEntry) -> None:
        self._clock += 1
        entry.last_used = self._clock

    def _bytes_resident(self) -> int:
        return sum(e.bytes_on_disk for e in self._entries.values())

    def _over_cap(self) -> bool:
        if self.max_entries is not None and len(self._entries) > self.max_entries:
            return True
        if self.max_bytes is not None and self._bytes_resident() > self.max_bytes:
            return True
        return False

    def _evict_over_cap(self, keep: Optional[str] = None) -> int:
        """Evict least-recently-used entries until back under the caps.
        ``keep`` (the fingerprint whose mutation triggered this) is
        never evicted, so a store with ``max_entries=1`` still works.
        Returns the number of entries evicted."""
        evicted = 0
        while self._over_cap():
            victims = [
                (e.last_used, fp)
                for fp, e in self._entries.items()
                if fp != keep
            ]
            if not victims:
                break  # only the protected entry remains
            _, fp = min(victims)
            self._evict(fp)
            evicted += 1
        return evicted

    def _evict(self, fp: str) -> None:
        """Drop one entry from memory and disk.  Deliberately NOT a
        quarantine: the entry is healthy, just cold, and a client that
        still needs it re-posts the execution (the observed-schedule
        witness is rebuilt on arrival) -- rebuildable, never evidence."""
        faults.fire("store.evict")
        self._entries.pop(fp, None)
        path = os.path.join(self.root, fp)
        try:
            shutil.rmtree(path)
        except OSError as exc:
            # the dirs-on-disk cleanup is best-effort (a read-only disk
            # cannot evict bytes); memory is what must stay bounded
            log.warning(
                "witness store: could not remove evicted entry %s (%s); "
                "compaction will reclaim it", fp, exc,
            )
        self.evictions += 1
        log.info("witness store: evicted %s (LRU, over size cap)", fp)

    # -- client surface -------------------------------------------------
    def put_execution(self, exe: ProgramExecution) -> str:
        """Store an execution (idempotent); returns its fingerprint.

        A failed durable write (disk full) counts as a flush failure --
        the entry is *not* registered, the error propagates, and the
        caller must report the store, not acknowledge it."""
        fp = serialize.execution_fingerprint(exe)
        with self._lock:
            entry = self._entries.get(fp)
            if entry is not None:
                self._touch(entry)
                return fp
            entry = _StoreEntry(exe, capacity=self.capacity)
            entry.add_observed()
            entry.dirty = True
            path = os.path.join(self.root, fp)
            try:
                faults.fire("store.put")
                os.makedirs(path, exist_ok=True)
                atomic_write_text(
                    os.path.join(path, "execution.json"),
                    entry.execution_text(),
                    durable=True,
                )
            except OSError:
                self.flush_failures += 1
                self.consecutive_flush_failures += 1
                raise
            entry.bytes_on_disk = self._entry_disk_bytes(path)
            self._touch(entry)
            self._entries[fp] = entry
            self._evict_over_cap(keep=fp)
        return fp

    def __contains__(self, fp: str) -> bool:
        with self._lock:
            return fp in self._entries

    def execution(self, fp: str) -> ProgramExecution:
        with self._lock:
            entry = self._entries[fp]
            self._touch(entry)
            return entry.exe

    def execution_doc(self, fp: str) -> Dict[str, Any]:
        with self._lock:
            return serialize.execution_to_dict(self._entries[fp].exe)

    def fingerprints(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def points_for(self, fp: str) -> List[List[List[int]]]:
        """Every stored schedule for ``fp`` (JSON-ready points), for
        seeding a query worker's cache."""
        with self._lock:
            entry = self._entries.get(fp)
            if entry is None:
                return []
            self._touch(entry)
            return entry.schedules()

    def add_points(self, fp: str, schedules) -> int:
        """Fold newly discovered schedules in (each re-validated by the
        entry's cache); returns how many were genuinely new."""
        if not schedules:
            return 0
        with self._lock:
            entry = self._entries.get(fp)
            if entry is None:
                return 0
            self._touch(entry)
            before = len(entry.cache)
            entry.cache.seed(schedules)
            added = len(entry.cache) - before
            if added:
                entry.dirty = True
            return added

    # -- durability ------------------------------------------------------
    def flush(self) -> int:
        """Write every dirty entry durably; returns entries written.

        A failed write (disk full, permissions) logs a warning, counts
        in :attr:`flush_failures` and leaves the entry dirty -- the
        in-memory copy keeps serving and the next flush retries.  A
        whole *pass* with failures bumps
        :attr:`consecutive_flush_failures`; a pass that writes cleanly
        resets it (the daemon reads it to decide degraded mode).
        """
        written = 0
        failed = 0
        with self._lock:
            for fp, entry in self._entries.items():
                if not entry.dirty:
                    continue
                path = os.path.join(self.root, fp, "witnesses.json")
                try:
                    faults.fire("store.flush")
                    atomic_write_text(
                        path,
                        entry.witnesses_text(fp),
                        durable=True,
                    )
                except OSError as exc:
                    self.flush_failures += 1
                    failed += 1
                    log.warning(
                        "witness store: flush of %s failed (%s); keeping "
                        "entry dirty, serving from memory", fp, exc,
                    )
                else:
                    entry.dirty = False
                    entry.bytes_on_disk = self._entry_disk_bytes(
                        os.path.join(self.root, fp)
                    )
                    written += 1
            if failed:
                self.consecutive_flush_failures += 1
            elif written:
                self.consecutive_flush_failures = 0
            if written:
                self._evict_over_cap()
        return written

    def probe(self) -> bool:
        """Can the store write durably *right now*?  Writes and removes
        a tiny probe file through the same atomic path a flush uses --
        the daemon's degraded-mode recovery check."""
        path = os.path.join(self.root, ".probe")
        try:
            atomic_write_text(path, "ok\n", durable=True)
            os.unlink(path)
        except OSError:
            return False
        return True

    # -- compaction ------------------------------------------------------
    def compact(self) -> int:
        """Rewrite the live entries into a fresh generation and swap it
        in; returns the number of entries carried over.

        Reclaims quarantine debris and eviction leftovers (this is the
        explicit, operator-invoked way to give that space back -- the
        normal load path never deletes evidence).  Crash-safe: the new
        generation is built in a sibling directory, fsync'ed, and
        swapped in with two renames; a SIGKILL anywhere leaves a state
        :func:`recover_compaction` resolves to exactly the old or the
        new generation.  On an in-process failure the same recovery
        runs before the error propagates, so the live store keeps
        working.
        """
        with self._lock:
            try:
                return self._compact_locked()
            except BaseException:
                recovered = recover_compaction(self.root)
                if recovered:
                    log.warning(
                        "witness store: compaction failed mid-swap; %s",
                        recovered,
                    )
                raise

    def _compact_locked(self) -> int:
        new_root = self.root + _COMPACT_NEW
        old_root = self.root + _COMPACT_OLD
        if os.path.isdir(new_root):  # debris of an earlier failed build
            shutil.rmtree(new_root)
        os.makedirs(new_root)
        carried = 0
        for fp, entry in self._entries.items():
            path = os.path.join(new_root, fp)
            os.makedirs(path)
            atomic_write_text(
                os.path.join(path, "execution.json"),
                entry.execution_text(),
                durable=True,
            )
            atomic_write_text(
                os.path.join(path, "witnesses.json"),
                entry.witnesses_text(fp),
                durable=True,
            )
            carried += 1
        faults.fire("store.compact.built")
        fsync_dir(new_root)
        # the swap: two renames.  A crash between them leaves no root;
        # recover_compaction restores the old generation.
        os.rename(self.root, old_root)
        faults.fire("store.compact.swapped-out")
        os.rename(new_root, self.root)
        faults.fire("store.compact.swapped-in")
        shutil.rmtree(old_root)
        fsync_dir(os.path.dirname(os.path.abspath(self.root)) or ".")
        for fp, entry in self._entries.items():
            entry.dirty = False  # the new generation just wrote them all
            entry.bytes_on_disk = self._entry_disk_bytes(
                os.path.join(self.root, fp)
            )
        self.compactions += 1
        self.consecutive_flush_failures = 0  # the disk demonstrably works
        log.info(
            "witness store: compacted into a fresh generation "
            "(%d entries carried)", carried,
        )
        return carried

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "executions": len(self._entries),
                "witnesses": sum(
                    len(e.cache) for e in self._entries.values()
                ),
                "dirty": sum(1 for e in self._entries.values() if e.dirty),
                "bytes": self._bytes_resident(),
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "quarantined": self.quarantined,
                "flush_failures": self.flush_failures,
                "consecutive_flush_failures": self.consecutive_flush_failures,
                "evictions": self.evictions,
                "compactions": self.compactions,
            }


__all__ = [
    "WitnessStore",
    "recover_compaction",
    "STORE_FORMAT",
    "STORE_VERSION",
]
