"""Unit tests for the scan checkpoint journal."""

import json
import os

import pytest

from repro.races.detector import FEASIBLE, RaceDetector
from repro.supervise.checkpoint import (
    CheckpointJournal,
    JournalError,
    JournalMismatchError,
    pair_count,
    scan_fingerprint,
)
from repro.workloads.programs import figure1_execution


@pytest.fixture
def exe():
    return figure1_execution()


@pytest.fixture
def journaled_scan(exe, tmp_path):
    """A completed scan journaled at ``path``; returns (path, fp, report)."""
    path = str(tmp_path / "scan.jsonl")
    fp = scan_fingerprint(exe)
    with CheckpointJournal.open(path, fp) as journal:
        report = RaceDetector(exe).feasible_races(on_classified=journal.append)
    return path, fp, report


class TestFingerprint:
    def test_deterministic(self, exe):
        assert scan_fingerprint(exe) == scan_fingerprint(exe)

    def test_sensitive_to_budget_options(self, exe):
        assert scan_fingerprint(exe) != scan_fingerprint(exe, max_states=10)
        assert scan_fingerprint(exe, per_pair_max_states=5) != scan_fingerprint(
            exe, per_pair_max_states=6
        )

    def test_sensitive_to_execution(self, exe):
        other = exe.without_dependences()
        assert scan_fingerprint(exe) != scan_fingerprint(other)

    def test_sensitive_to_solver_plan(self, exe):
        from repro.solve.backends import BEST_EFFORT_PLAN, DEFAULT_PLAN

        # resuming under a different ladder would mix verdict strengths
        # in one journal, so the plan is part of the scan identity
        assert scan_fingerprint(exe, plan=DEFAULT_PLAN) != scan_fingerprint(
            exe, plan=BEST_EFFORT_PLAN
        )
        assert scan_fingerprint(exe, plan=DEFAULT_PLAN) == scan_fingerprint(
            exe, plan=list(DEFAULT_PLAN)
        )
        assert scan_fingerprint(exe) != scan_fingerprint(exe, plan=DEFAULT_PLAN)

    def test_resume_with_changed_plan_is_refused(self, exe, tmp_path):
        from repro.solve.backends import BEST_EFFORT_PLAN, DEFAULT_PLAN

        path = str(tmp_path / "scan.jsonl")
        with CheckpointJournal.open(
            path, scan_fingerprint(exe, plan=DEFAULT_PLAN)
        ) as journal:
            RaceDetector(exe).feasible_races(on_classified=journal.append)
        with pytest.raises(JournalMismatchError, match="solver plan"):
            CheckpointJournal.open(
                path, scan_fingerprint(exe, plan=BEST_EFFORT_PLAN), resume=True
            )


class TestJournalRoundTrip:
    def test_scan_journal_counts_pairs(self, exe, journaled_scan):
        path, _, report = journaled_scan
        assert pair_count(path) == report.conflicting_pairs_examined

    def test_resume_reuses_everything(self, exe, journaled_scan):
        path, fp, report = journaled_scan
        with CheckpointJournal.open(path, fp, resume=True) as journal:
            pre = journal.classifications(exe)
        assert set(pre) == {(c.a, c.b) for c in report.classifications}
        for (a, b), c in pre.items():
            if c.status == FEASIBLE:
                c.witness.validate(include_dependences=False)

    def test_resumed_scan_skips_journaled_pairs(self, exe, journaled_scan):
        path, fp, report = journaled_scan
        recomputed = []
        with CheckpointJournal.open(path, fp, resume=True) as journal:
            pre = journal.classifications(exe)
            again = RaceDetector(exe).feasible_races(
                precomputed=pre, on_classified=recomputed.append
            )
        assert recomputed == []  # nothing left to compute
        assert pair_count(path) == report.conflicting_pairs_examined
        assert again.summary() == report.summary()


class TestJournalRobustness:
    def test_torn_final_line_dropped_and_truncated(self, exe, journaled_scan):
        path, fp, report = journaled_scan
        with open(path) as fh:
            whole = fh.read()
        torn = whole[: len(whole) - 9]  # cut inside the final record
        with open(path, "w") as fh:
            fh.write(torn)
        with CheckpointJournal.open(path, fp, resume=True) as journal:
            pre = journal.classifications(exe)
            assert len(pre) == report.conflicting_pairs_examined - 1
            # appends after a torn tail must start on their own line
            missing = [
                c for c in report.classifications if (c.a, c.b) not in pre
            ]
            journal.append(missing[0])
        assert pair_count(path) == report.conflicting_pairs_examined
        with open(path) as fh:
            for line in fh:
                json.loads(line)  # every line is whole again

    def test_fingerprint_mismatch_refuses_resume(self, journaled_scan):
        path, _, _ = journaled_scan
        with pytest.raises(JournalMismatchError):
            CheckpointJournal.open(path, "not-the-fingerprint", resume=True)

    def test_mid_file_corruption_fails_loudly(self, journaled_scan):
        path, fp, _ = journaled_scan
        lines = open(path).read().splitlines()
        lines[1] = lines[1][:5]  # corrupt a non-final record
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        with pytest.raises(JournalError):
            CheckpointJournal.open(path, fp, resume=True)

    def test_wrong_format_rejected(self, tmp_path):
        path = str(tmp_path / "bogus.jsonl")
        with open(path, "w") as fh:
            fh.write('{"format": "something-else"}\n')
        with pytest.raises(JournalError):
            pair_count(path)

    def test_empty_file_rejected(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        open(path, "w").close()
        with pytest.raises(JournalError):
            pair_count(path)

    def test_fresh_open_overwrites(self, exe, journaled_scan, tmp_path):
        path, fp, _ = journaled_scan
        with CheckpointJournal.open(path, fp) as journal:
            assert journal.resumed_records == []
        assert pair_count(path) == 0
