"""Tests for the eager-begin timing model (core.eager)."""

from hypothesis import given, settings

from repro.core.eager import EagerOrderingQueries, eager_relations_by_enumeration
from repro.core.relations import RelationName
from repro.model.builder import ExecutionBuilder

from tests.strategies import small_event_executions, small_semaphore_executions


def eager_fns(q):
    return {
        RelationName.MHB: q.mhb,
        RelationName.CHB: q.chb,
        RelationName.MCW: q.mcw,
        RelationName.CCW: q.ccw,
        RelationName.MOW: q.mow,
        RelationName.COW: q.cow,
    }


class TestEagerBasics:
    def test_root_first_events_must_be_concurrent(self):
        """Both begin at time zero in every execution: MCW holds --
        the eager model's signature difference from the lazy model."""
        b = ExecutionBuilder()
        x = b.process("A").skip()
        y = b.process("B").skip()
        q = EagerOrderingQueries(b.build())
        assert q.mcw(x, y)
        assert not q.cow(x, y)
        assert not q.chb(x, y) and not q.chb(y, x)

    def test_program_order_still_must_order(self):
        b = ExecutionBuilder()
        p = b.process("p")
        x, y = p.skip(), p.skip()
        q = EagerOrderingQueries(b.build())
        assert q.mhb(x, y)
        assert not q.ccw(x, y)

    def test_chb_via_prerequisite(self):
        # x in another process can complete before y's po-predecessor
        # completes, so x ->T y is possible under eager begins
        b = ExecutionBuilder()
        p = b.process("p")
        pre, y = p.skip(), p.skip()
        x = b.process("q").skip()
        q = EagerOrderingQueries(b.build())
        assert q.chb(x, y)
        # ... but x can never happen-before the prerequisite-free `pre`
        assert not q.chb(x, pre)

    def test_deadlocked_vacuous(self):
        b = ExecutionBuilder()
        x = b.process("A").sem_p("never")
        y = b.process("B").skip()
        q = EagerOrderingQueries(b.build())
        assert not q.has_feasible_execution()
        assert q.mhb(x, y) and q.mcw(x, y) and q.mow(x, y)
        assert not q.chb(x, y) and not q.ccw(x, y) and not q.cow(x, y)

    def test_self_pair_conventions(self):
        b = ExecutionBuilder()
        x = b.process("A").skip()
        q = EagerOrderingQueries(b.build())
        assert q.mcw(x, x) and q.ccw(x, x)
        assert not q.chb(x, x) and not q.mhb(x, x)
        assert not q.cow(x, x) and not q.mow(x, x)


class TestEagerAgainstEnumeration:
    @given(small_semaphore_executions())
    @settings(max_examples=25, deadline=None)
    def test_semaphore_agreement(self, exe):
        ref = eager_relations_by_enumeration(exe)
        fns = eager_fns(EagerOrderingQueries(exe))
        n = len(exe)
        for name in RelationName:
            for a in range(n):
                for b in range(n):
                    if a != b:
                        assert fns[name](a, b) == ((a, b) in ref[name]), (name, a, b)

    @given(small_event_executions())
    @settings(max_examples=20, deadline=None)
    def test_event_agreement(self, exe):
        ref = eager_relations_by_enumeration(exe)
        fns = eager_fns(EagerOrderingQueries(exe))
        n = len(exe)
        for name in RelationName:
            for a in range(n):
                for b in range(n):
                    if a != b:
                        assert fns[name](a, b) == ((a, b) in ref[name]), (name, a, b)


class TestCrossModelRelationships:
    """Eager feasible executions are a subset of lazy ones with earlier
    begins, so eager CHB implies lazy CHB and lazy MHB implies eager MHB."""

    @given(small_semaphore_executions())
    @settings(max_examples=20, deadline=None)
    def test_eager_chb_subset_of_lazy_chb(self, exe):
        from repro.core.queries import OrderingQueries

        lazy = OrderingQueries(exe)
        eager = EagerOrderingQueries(exe)
        n = len(exe)
        for a in range(n):
            for b in range(n):
                if a != b and eager.chb(a, b):
                    assert lazy.chb(a, b)

    @given(small_semaphore_executions())
    @settings(max_examples=20, deadline=None)
    def test_lazy_mhb_subset_of_eager_mhb(self, exe):
        from repro.core.queries import OrderingQueries

        lazy = OrderingQueries(exe)
        eager = EagerOrderingQueries(exe)
        n = len(exe)
        for a in range(n):
            for b in range(n):
                if a != b and lazy.mhb(a, b):
                    assert eager.mhb(a, b)
