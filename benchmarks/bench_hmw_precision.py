"""Experiment S4a -- Section 4: the Helmbold/McDowell/Wang comparison.

The paper: HMW "present algorithms for computing only some of the
must-have orderings ... their algorithms run in polynomial time since
they compute only some of the must-have-happened-before orderings.
The resulting ordering relation is therefore a subset of our MHB
relation."  Also: the phase-1 pairing "is unsafe because another
execution might exhibit a different pairing".

Measured over seeded random semaphore workloads, against the exact
must-complete-before relation (the coarsening HMW's serial traces speak
about):

* phase 1 over-claims on some traces (unsound edges counted);
* phases 2/3 are always sound (asserted) but incomplete: precision
  ``|HMW| / |exact|`` is reported per workload;
* HMW runs orders of magnitude fewer engine states (it runs none) --
  the polynomial-vs-exponential trade the paper explains.
"""

import time

from conftest import report, table

from repro.approx.hmw import HMWAnalysis
from repro.core.queries import OrderingQueries
from repro.workloads.generators import random_semaphore_execution

WORKLOADS = [
    dict(processes=3, events_per_process=4, semaphores=1, seed=s) for s in range(4)
] + [
    dict(processes=3, events_per_process=4, semaphores=2, seed=s) for s in range(4)
]


def exact_mcb_pairs(exe):
    q = OrderingQueries(exe)
    n = len(exe)
    pairs = {
        (a, b) for a in range(n) for b in range(n) if a != b and q.mcb(a, b)
    }
    return pairs, q.stats.states_visited


def run_comparison():
    results = []
    for spec in WORKLOADS:
        exe = random_semaphore_execution(**spec)
        t0 = time.perf_counter()
        hmw = HMWAnalysis(exe)
        p1 = set(hmw.phase1().pairs)
        p2 = set(hmw.phase2().pairs)
        p3 = set(hmw.phase3().pairs)
        hmw_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        exact, states = exact_mcb_pairs(exe)
        exact_seconds = time.perf_counter() - t0
        results.append(
            dict(
                spec=spec, exe=exe, p1=p1, p2=p2, p3=p3, exact=exact,
                hmw_seconds=hmw_seconds, exact_seconds=exact_seconds,
                states=states,
            )
        )
    return results


def test_hmw_precision_and_soundness(benchmark):
    results = benchmark(run_comparison)

    rows = []
    phase1_unsound_total = 0
    for r in results:
        unsound1 = len(r["p1"] - r["exact"])
        phase1_unsound_total += unsound1
        # the paper's subset claim, for the safe phases
        assert r["p2"] <= r["exact"]
        assert r["p3"] <= r["exact"]
        assert r["p2"] <= r["p3"]
        precision = len(r["p3"]) / len(r["exact"]) if r["exact"] else 1.0
        rows.append(
            [
                r["spec"]["seed"],
                r["spec"]["semaphores"],
                len(r["exe"]),
                len(r["exact"]),
                len(r["p1"]),
                unsound1,
                len(r["p2"]),
                len(r["p3"]),
                f"{precision:.2f}",
                f"{r['hmw_seconds'] * 1e3:.1f}ms",
                f"{r['exact_seconds'] * 1e3:.1f}ms",
            ]
        )

    headers = [
        "seed", "sems", "|E|", "exact", "ph1", "ph1-unsound",
        "ph2(safe)", "ph3(safe)", "ph3 precision", "HMW time", "exact time",
    ]
    lines = table(headers, rows)
    lines.append("")
    lines.append(
        f"phase 1 unsound edges across workloads: {phase1_unsound_total} "
        "(the paper's 'unsafe pairing')"
    )
    lines.append("phases 2/3 always subsets of the exact must-ordering (asserted)")
    report("hmw_precision", lines)
