"""Layered best-effort ordering analysis under a budget.

The paper's theorems mean an exact analyzer cannot promise polynomial
time; a practical tool therefore needs graceful degradation.
:class:`BestEffortOrdering` answers must-complete-before queries by
escalating through

1. **structural** reachability (program order, fork/join, dependences)
   -- linear, always sound;
2. the **observed schedule** -- a known member of ``F``, so its
   completion order soundly *refutes* must-claims it contradicts;
3. the **HMW counting phases** (semaphore executions only) --
   polynomial, sound;
4. the **exact engine**, bounded by ``max_states`` / a
   :class:`~repro.budget.Budget` per query.

Answers are three-valued: ``True``/``False`` when some layer decides
soundly, ``None`` when every layer within budget is inconclusive
(never a guess).  ``decided_by`` records which layer settled each
query, so callers can report how much of the truth was cheap -- the
empirical content of the paper's "polynomial algorithms compute only
*some* of the orderings".  :meth:`mcb_verdict` exposes the same answer
as a :class:`~repro.budget.Verdict` with that provenance attached.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.approx.hmw import HMWAnalysis, InfeasibleTraceError
from repro.budget import Budget, Verdict
from repro.core.engine import SearchBudgetExceeded
from repro.core.queries import OrderingQueries
from repro.model.execution import ProgramExecution, SyncStyle
from repro.util.relations import BinaryRelation


class BestEffortOrdering:
    """Three-valued must-complete-before with layered escalation."""

    def __init__(
        self,
        exe: ProgramExecution,
        *,
        max_states: Optional[int] = 50_000,
        use_hmw: bool = True,
        budget: Optional[Budget] = None,
        queries: Optional[OrderingQueries] = None,
    ) -> None:
        self.exe = exe
        self.queries = queries or OrderingQueries(
            exe, max_states=max_states, budget=budget
        )
        self.decided_by: Dict[Tuple[int, int], str] = {}
        self.exhausted: Dict[Tuple[int, int], Optional[str]] = {}
        self._observed_pos: Optional[Dict[int, int]] = None
        if exe.observed_schedule is not None:
            self._observed_pos = {
                eid: i for i, eid in enumerate(exe.observed_schedule)
            }
        self._hmw_relation: Optional[BinaryRelation] = None
        if use_hmw and exe.sync_style in (SyncStyle.SEMAPHORE, SyncStyle.NONE):
            try:
                self._hmw_relation = HMWAnalysis(exe).phase3()
            except InfeasibleTraceError:
                self._hmw_relation = None

    # ------------------------------------------------------------------
    def mcb(self, a: int, b: int) -> Optional[bool]:
        """Must ``a`` complete before ``b``?  True/False/None (unknown)."""
        key = (a, b)
        if a == b:
            self.decided_by[key] = "trivial"
            return False
        # layer 1: structure decides both polarities cheaply
        if self.queries.statically_ordered(a, b):
            self.decided_by[key] = "structural"
            return True
        if self.queries.statically_ordered(b, a):
            # b always completes first, so a-before-b is impossible
            self.decided_by[key] = "structural"
            return False
        # layer 2: the observed member of F refutes must-claims it
        # contradicts (it completes b before a)
        pos = self._observed_pos
        if pos is not None and pos[b] < pos[a]:
            self.decided_by[key] = "observed"
            return False
        # layer 3: HMW's sound counting orderings (positive only)
        if self._hmw_relation is not None and (a, b) in self._hmw_relation:
            self.decided_by[key] = "hmw"
            return True
        # layer 4: exact, within budget
        try:
            answer = self.queries.mcb(a, b)
        except SearchBudgetExceeded as exc:
            self.decided_by[key] = "unknown"
            self.exhausted[key] = exc.resource
            return None
        self.decided_by[key] = "exact"
        return answer

    def mcb_verdict(self, a: int, b: int) -> Verdict:
        """:meth:`mcb` as a provenance-carrying verdict."""
        answer = self.mcb(a, b)
        key = (a, b)
        if answer is None:
            return Verdict.unknown(
                resource=self.exhausted.get(key), stats=self.queries.stats
            )
        return Verdict.of_bool(
            answer, self.decided_by[key], stats=self.queries.stats
        )

    # ------------------------------------------------------------------
    def relation_with_provenance(self) -> Dict[str, object]:
        """All pairs classified, with per-layer counts.

        Returns ``{"relation": {(a, b): True/False/None}, "layers":
        {layer: count}}``.
        """
        n = len(self.exe)
        relation: Dict[Tuple[int, int], Optional[bool]] = {}
        for a in range(n):
            for b in range(n):
                if a != b:
                    relation[(a, b)] = self.mcb(a, b)
        layers: Dict[str, int] = {}
        for layer in self.decided_by.values():
            layers[layer] = layers.get(layer, 0) + 1
        return {"relation": relation, "layers": layers}
