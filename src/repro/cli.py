"""Command-line interface.

Subcommands (also available as ``python -m repro``):

* ``repro run PROGRAM.rp`` -- parse a text program, simulate it
  (seeded or priority-scheduled), print the trace, optionally save the
  execution as JSON (``--save``) or the order graph as DOT (``--dot``);
* ``repro analyze EXECUTION.json`` -- relation summary of a saved
  execution, or a specific pair query with witness
  (``--pair LABEL LABEL --relation mhb``);
* ``repro races EXECUTION.json`` -- apparent and feasible races;
* ``repro sat FORMULA.cnf`` -- decide a DIMACS formula through the
  Theorem 1/3 reductions (and cross-check with DPLL);
* ``repro explore PROGRAM.rp`` -- exhaustive schedule-tree summary:
  run counts, deadlocks, event signatures, guaranteed orderings;
* ``repro trace summarize TRACE.jsonl`` -- re-aggregate a ``--trace``
  file into the same per-tier table the live scan printed;
* ``repro trace profile TRACE.jsonl`` -- merge the trace's search
  profile records into the "hot events" table (which orderings the
  exponential search spent its states on);
* ``repro trace timeline TRACE.jsonl`` -- per-worker utilization
  (busy/idle, pairs, crashes) reconstructed from the pool's
  dispatch/result spans, flagging stragglers;
* ``repro serve --store DIR`` -- long-lived query daemon: POST
  executions, query MHB/CHB/CCW/races over HTTP, witnesses persisted
  across queries and restarts (see :mod:`repro.serve`).

Observability: ``analyze`` and ``races`` accept ``--trace FILE``
(structured JSONL spans: query tier escalations, engine progress,
worker lifecycle, checkpoint writes) and ``--metrics FILE``
(a Prometheus-style text snapshot); long ``races`` scans also print a
live one-line progress meter on a tty (force with ``REPRO_PROGRESS=1``).
``--serve PORT`` additionally serves live ``/status`` (JSON),
``/metrics`` (Prometheus) and ``/healthz`` endpoints on 127.0.0.1 from
a daemon thread for the lifetime of the run -- a scan you can ask "how
far along are you" without touching it.  ``--profile FILE`` turns on
the search profiler (a pure observer: identical classifications and
states either way), prints the hot-events table after the scan and
saves the mergeable profile snapshot as JSON.

Budgets: ``analyze`` and ``races`` accept ``--max-states`` and
``--timeout SECONDS`` (and ``races`` a ``--per-pair-states`` cap so one
hard pair cannot starve the scan).  Budgeted runs never crash on
exhaustion: undecided queries print as ``UNKNOWN`` and the process
exits with status ``3`` ("completed with unknowns") so scripts can
distinguish a partial answer from a definite one (``0``) and from
errors (``1``/``2``).

Supervision: ``races --feasible`` scales out and survives crashes with
``--jobs N`` (crash-isolated worker pool; each worker optionally under
``--max-memory-mb`` kernel caps, dead pairs retried ``--retries``
times), and survives *process* death with ``--checkpoint scan.jsonl``
(every classified pair is journaled durably; ``--resume`` skips them on
the next run).  Ctrl-C during a scan drains the in-flight results,
flushes the journal, prints the partial report and exits ``130``.

Exit status summary: ``0`` success / ``1`` runtime failure (deadlock,
cross-check disagreement) / ``2`` bad input (parse error, unreadable
file, journal mismatch) / ``3`` completed with unknowns / ``130``
interrupted (Ctrl-C) / ``143`` terminated (SIGTERM); both stop signals
take the same graceful path -- drain, flush, partial report.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
import time
from typing import List, Optional

from repro.analysis import ProgramAnalysis
from repro.budget import Budget
from repro.core.engine import SearchBudgetExceeded
from repro.core.queries import OrderingQueries
from repro.core.relations import ALL_RELATIONS, OrderingAnalyzer, RelationName
from repro.lang.interpreter import DeadlockError, run_program
from repro.lang.parser import ParseError, parse_program
from repro.lang.scheduler import PriorityScheduler, RandomScheduler
from repro.model import serialize
from repro.obs import (
    JsonlTraceSink,
    MetricsRegistry,
    ObsServer,
    ScanProgress,
    SearchProfile,
    StatusBoard,
    iter_trace,
    planner_metrics,
    scan_metrics,
    summarize_serve_trace,
    summarize_trace,
)
from repro.races.detector import RaceDetector
from repro.reductions import (
    decide_sat_via_ordering,
    decide_unsat_via_ordering,
    event_reduction,
    semaphore_reduction,
)
from repro.sat.cnf import parse_dimacs
from repro.sat.dpll import solve
from repro.serve import QueryDaemon, WitnessStore
from repro.solve import BEST_EFFORT_PLAN, DEFAULT_PLAN, resolve_plan
from repro.supervise import (
    CheckpointJournal,
    JournalError,
    ResourceLimits,
    RetryPolicy,
    SupervisedScanner,
    scan_fingerprint,
)
from repro.util.fileio import atomic_write_text
from repro import faults as faults_mod
from repro import viz


def _read(path: str) -> str:
    with open(path) as fh:
        return fh.read()


# exit status for "ran to completion but some queries stayed UNKNOWN
# under the budget" -- distinct from success (0) and hard errors (1/2)
EXIT_UNKNOWN = 3
# bad input: parse error, unreadable file, journal/execution mismatch
EXIT_USAGE = 2
# interrupted by Ctrl-C (the conventional 128 + SIGINT)
EXIT_INTERRUPTED = 130
# terminated by a supervisor's SIGTERM (the conventional 128 + SIGTERM);
# same graceful-stop path as Ctrl-C, distinguishable by scripts
EXIT_TERMINATED = 143

#: set by the SIGTERM relay so exit-code mapping can tell a
#: supervisor's stop (143) from a Ctrl-C (130)
_SIGTERM_SEEN = [False]


def _install_sigterm_relay() -> None:
    """Treat SIGTERM exactly like Ctrl-C, everywhere.

    Every graceful-stop path in this CLI -- the supervised pool's
    drain, the journal's deferred appends, the partial-report printer
    -- is built on ``KeyboardInterrupt``.  Relaying SIGTERM into the
    same exception gives a systemd/CI ``kill`` the identical clean
    drain a Ctrl-C gets (journal tail whole, partial report written),
    instead of the interpreter's default die-on-the-spot.
    """

    def relay(signum, frame):
        _SIGTERM_SEEN[0] = True
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, relay)
    except ValueError:  # embedded off the main thread: leave it be
        pass


def _budget_from_args(args: argparse.Namespace) -> Optional[Budget]:
    """Build a Budget from --max-states / --timeout when either is set."""
    max_states = getattr(args, "max_states", None)
    timeout = getattr(args, "timeout", None)
    if max_states is None and timeout is None:
        return None
    return Budget.of(max_states=max_states, timeout=timeout)


_NAMED_PLANS = {"default": DEFAULT_PLAN, "best-effort": BEST_EFFORT_PLAN}


def _start_server(port: int):
    """Bind the live ``--serve`` endpoint, loudly and eagerly.

    Returns ``(board, server)`` on success and ``(None, None)`` after
    printing one diagnostic line when the port cannot be bound -- the
    caller turns that into exit status 2 *before* any scan work starts,
    so a typo'd port never silently runs an unobservable hour-long scan.
    """
    board = StatusBoard()
    try:
        server = ObsServer(board, port).start()
    except OSError as exc:
        print(
            f"repro: cannot serve on port {port}: {exc}", file=sys.stderr
        )
        return None, None
    print(
        f"repro: serving /status /metrics /healthz on "
        f"http://{server.host}:{server.port}",
        file=sys.stderr,
    )
    return board, server


def _save_profile(profile: SearchProfile, path: str) -> None:
    """Print the hot-events table and save the mergeable snapshot."""
    print("\n".join(profile.describe()))
    atomic_write_text(
        path,
        json.dumps(profile.snapshot(), indent=2, sort_keys=True) + "\n",
    )
    print(f"saved search profile to {path}")


def _plan_from_args(args: argparse.Namespace):
    """The portfolio tier ladder from --plan / --backends (or None).

    ``--backends`` (an explicit comma-separated ladder) wins over
    ``--plan`` (a named preset).  Unknown backend names raise
    ``ValueError``, which main() turns into exit status 2.
    """
    backends = getattr(args, "backends", None)
    if backends:
        names = tuple(n.strip() for n in backends.split(",") if n.strip())
        if not names:
            raise ValueError("--backends needs at least one backend name")
        resolve_plan(names)  # validate eagerly for a one-line diagnostic
        return names
    plan = getattr(args, "plan", None)
    if plan:
        return _NAMED_PLANS[plan]
    return None


# ----------------------------------------------------------------------
def cmd_run(args: argparse.Namespace) -> int:
    program = parse_program(_read(args.program))
    if args.priority:
        scheduler = PriorityScheduler(args.priority.split(","))
    else:
        scheduler = RandomScheduler(args.seed)
    try:
        trace = run_program(
            program,
            scheduler,
            max_steps=args.max_steps,
            memory_model=args.memory_model,
        )
    except DeadlockError as dead:
        print(f"DEADLOCK: blocked processes {list(dead.blocked)}")
        print(dead.trace.pretty())
        return 1
    print(trace.pretty())
    print(f"\nfinal shared state: {trace.final_shared}")
    exe = trace.to_execution()
    print(f"execution: {exe}")
    if args.save:
        serialize.save(exe, args.save)
        print(f"saved execution to {args.save}")
    if args.dot:
        with open(args.dot, "w") as fh:
            fh.write(viz.execution_dot(exe) + "\n")
        print(f"saved order-graph DOT to {args.dot}")
    return 0


def _analyze_pair_budgeted(
    q: OrderingQueries, args: argparse.Namespace, la: str, lb: str, a: int, b: int
) -> int:
    """Budgeted pair query: three-valued output, never a traceback."""
    if args.relation == "all":
        verdicts = q.relation_verdicts(a, b)
    else:
        verdicts = {
            args.relation.upper(): getattr(q, f"{args.relation}_verdict")(a, b)
        }
    unknowns = 0
    for name, v in verdicts.items():
        if v.is_unknown:
            unknowns += 1
            print(f"  {name}({la}, {lb}) = UNKNOWN (exhausted {v.resource or 'budget'})")
        else:
            print(f"  {name}({la}, {lb}) = {v.truth}  [{v.provenance}]")
            if v.witness is not None and args.relation in ("chb", "ccw"):
                print(v.witness.pretty())
    if unknowns:
        print(
            f"{unknowns} quer{'y' if unknowns == 1 else 'ies'} undecided under "
            "the budget; rerun with a larger --max-states/--timeout"
        )
        return EXIT_UNKNOWN
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    exe = serialize.load(args.execution)
    if args.memory_model is not None:
        # an unknown name raises ValueError -> exit status 2 with the
        # resolver's one-line message listing the known models
        exe = exe.with_memory_model(args.memory_model)
    print(f"loaded: {exe}")
    budget = _budget_from_args(args)
    plan = _plan_from_args(args)
    if args.pair:
        la, lb = args.pair
        a, b = exe.by_label(la).eid, exe.by_label(lb).eid
        q = OrderingQueries(
            exe, include_dependences=not args.ignore_deps, budget=budget,
            plan=plan, por=args.por,
        )
        observed = (
            args.trace or args.metrics or args.profile
            or args.serve is not None
        )
        if budget is not None or plan is not None or observed:
            # a custom ladder (or observability, which instruments the
            # planner) only makes sense through the portfolio's
            # three-valued verdict path
            profile = SearchProfile() if args.profile else None
            board = server = None
            if args.serve is not None:
                board, server = _start_server(args.serve)
                if server is None:
                    return EXIT_USAGE
                board.begin_scan(
                    total=0,
                    fingerprint=args.execution,
                    budget=budget,
                    planner_provider=lambda: q.planner.report.snapshot(),
                    profile_provider=(
                        (lambda: profile.snapshot())
                        if profile is not None
                        else None
                    ),
                )
                q.planner.attach_board(board)
            sink = JsonlTraceSink(args.trace) if args.trace else None
            try:
                if sink is not None:
                    q.planner.attach_tracer(sink)
                if profile is not None:
                    q.planner.attach_profiler(profile)
                status = _analyze_pair_budgeted(q, args, la, lb, a, b)
            finally:
                if sink is not None:
                    sink.close()
                if server is not None:
                    board.finish("done")
                    server.close()
            if profile is not None:
                _save_profile(profile, args.profile)
            if args.metrics:
                registry = MetricsRegistry()
                planner_metrics(registry, q.planner.report)
                registry.write(args.metrics)
            return status
        if args.relation == "all":
            for name, value in q.relation_values(a, b).items():
                print(f"  {name}({la}, {lb}) = {value}")
        else:
            fn = getattr(q, args.relation)
            value = fn(a, b)
            print(f"  {args.relation.upper()}({la}, {lb}) = {value}")
            witness = None
            if args.relation == "chb":
                witness = q.chb_witness(a, b)
            elif args.relation == "ccw":
                witness = q.ccw_witness(a, b)
            elif args.relation == "mhb" and not value:
                witness = q.why_not_mhb(a, b)
                if witness is not None:
                    print("  counterexample schedule:")
            if witness is not None:
                print(witness.pretty())
        return 0
    analyzer = OrderingAnalyzer(
        exe, include_dependences=not args.ignore_deps, budget=budget,
        por=args.por,
    )
    print("pair counts per relation:")
    for name, count in analyzer.summary().items():
        print(f"  {name:>4}: {count}")
    if args.matrix:
        name = RelationName[args.matrix.upper()]
        print(f"\n{name.name} matrix:")
        print(analyzer.matrix(name))
    return 0


def _races_runner(
    args: argparse.Namespace, tracer=None
) -> Optional[SupervisedScanner]:
    """The crash-isolated pool, when any supervision flag asks for it."""
    wants_pool = (
        args.jobs > 1 or args.max_memory_mb is not None or args.fault_spec
    )
    if not wants_pool:
        return None
    limits = None
    if args.max_memory_mb is not None:
        limits = ResourceLimits(max_memory_mb=args.max_memory_mb)
    faults = json.loads(args.fault_spec) if args.fault_spec else None
    scanner = SupervisedScanner(
        jobs=max(1, args.jobs),
        limits=limits,
        # jittered backoff: when one host-wide cause kills several
        # workers at once, their retries spread out instead of
        # stampeding back in lockstep (deterministic, seeded by pair)
        retry=RetryPolicy(max_retries=args.retries, jitter=0.5),
        faults=faults,
    )
    if tracer is not None:
        scanner.tracer = tracer
    return scanner


def cmd_races(args: argparse.Namespace) -> int:
    if args.resume and not args.checkpoint:
        print("repro: --resume requires --checkpoint", file=sys.stderr)
        return EXIT_USAGE
    exe = serialize.load(args.execution)
    if args.memory_model is not None:
        # rebuild under the requested model before anything derives
        # from the execution -- including scan_fingerprint, so a
        # --resume under a different --memory-model is refused exactly
        # like a changed plan or budget
        exe = exe.with_memory_model(args.memory_model)
    budget = _budget_from_args(args)
    plan = _plan_from_args(args)
    detector = RaceDetector(
        exe, max_states=args.max_states, budget=budget, plan=plan,
        por=args.por,
    )
    apparent = detector.apparent_races()
    print(apparent.pretty())
    # any supervision/persistence/observability flag implies the
    # feasible scan: those flags are meaningless for the polynomial
    # apparent detector
    feasible_wanted = (
        args.feasible or args.checkpoint or args.jobs > 1 or args.save
        or args.trace or args.metrics or args.profile
        or args.serve is not None
    )
    if not feasible_wanted:
        return 0
    board = server = None
    if args.serve is not None:
        board, server = _start_server(args.serve)
        if server is None:
            return EXIT_USAGE
    try:
        return _feasible_scan(args, exe, detector, budget, plan, board)
    finally:
        if server is not None:
            server.close()


def _feasible_scan(
    args: argparse.Namespace, exe, detector, budget, plan, board
) -> int:
    """The supervised feasible scan behind ``repro races`` (everything
    past the apparent report); ``board`` is the live ``--serve`` status
    board or None."""
    journal = None
    precomputed = {}
    fingerprint = None
    profile = SearchProfile() if args.profile else None
    tracer = JsonlTraceSink(args.trace) if args.trace else None
    traced = tracer is not None
    t0 = time.monotonic()
    try:
        if args.checkpoint:
            fingerprint = scan_fingerprint(
                exe,
                max_states=args.max_states,
                per_pair_max_states=args.per_pair_states,
                # the *resolved* ladder: --resume under a different
                # --plan/--backends must be refused, not silently mix
                # verdicts of different strength
                plan=plan if plan is not None else DEFAULT_PLAN,
                # likewise --por: reduction changes what fits a states
                # budget, so resumed UNKNOWNs must mean the same thing
                por=args.por,
            )
            journal = CheckpointJournal.open(
                args.checkpoint, fingerprint, resume=args.resume
            )
            precomputed = journal.classifications(exe)
            if precomputed:
                print(
                    f"resume: reusing {len(precomputed)} journaled pair(s) "
                    f"from {args.checkpoint}"
                )
        todo = len(exe.conflicting_pairs()) - len(precomputed)
        progress = ScanProgress(todo, budget=budget)
        checkpoint_writes = [0]

        def on_classified(c):
            if journal is not None:
                journal.append(c)
                checkpoint_writes[0] += 1
                if board is not None:
                    board.note_checkpoint_write()
                if traced:
                    tracer.emit(
                        {"kind": "checkpoint.write", "a": c.a, "b": c.b}
                    )
            if board is not None:
                board.pair_done(c)
            progress.update(c)

        runner = _races_runner(args, tracer)
        if board is not None:
            serial = runner is None
            board.begin_scan(
                total=len(exe.conflicting_pairs()),
                fingerprint=fingerprint,
                budget=budget,
                # serial scans read the shared planner/profile at
                # publish time (same thread); parallel scans merge the
                # workers' per-pair snapshots as results arrive
                planner_provider=(
                    (lambda: detector.planner.report.snapshot())
                    if serial else None
                ),
                profile_provider=(
                    (lambda: profile.snapshot())
                    if serial and profile is not None else None
                ),
            )
            # journaled pairs count immediately: /status totals always
            # match the final report, resumed or not (fresh=False keeps
            # them out of the observed pair rate and the ETA)
            for c in precomputed.values():
                board.pair_done(c, fresh=False)
            if serial:
                detector.planner.attach_board(board)
            else:
                runner.board = board
        try:
            feasible = detector.feasible_races(
                per_pair_max_states=args.per_pair_states,
                runner=runner,
                precomputed=precomputed,
                on_classified=on_classified,
                tracer=tracer,
                profile=profile,
            )
            if board is not None:
                board.finish(
                    "interrupted" if feasible.interrupted else "done"
                )
        finally:
            progress.finish()
            if journal is not None:
                journal.close()
    finally:
        if tracer is not None:
            tracer.close()
    if args.metrics:
        registry = MetricsRegistry()
        scan_metrics(
            registry,
            feasible,
            elapsed=time.monotonic() - t0,
            worker_restarts=runner.worker_restarts if runner is not None else 0,
            checkpoint_writes=checkpoint_writes[0],
        )
        registry.write(args.metrics)
    print(feasible.pretty())
    if feasible.planner is not None and feasible.planner.queries:
        print(feasible.planner.describe())
    if profile is not None:
        _save_profile(profile, args.profile)
    if args.witnesses:
        for race in feasible.races:
            if race.witness is not None:
                print(f"witness for {race.describe(exe)}:")
                print(race.witness.pretty())
    if args.save:
        serialize.save_report(feasible, args.save, trace=args.trace or None)
        print(f"saved race report to {args.save}")
    if feasible.interrupted:
        missing = feasible.conflicting_pairs_examined - len(
            feasible.classifications
        )
        where = (
            f"; {args.checkpoint} holds the classified pairs "
            "(rerun with --resume to continue)"
            if args.checkpoint
            else ""
        )
        print(
            f"repro: interrupted with {missing} pair(s) unexamined{where}",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    if not feasible.complete:
        n = len(feasible.unknown_pairs)
        print(
            f"{n} pair{'' if n == 1 else 's'} undecided under the budget; "
            "rerun with a larger --max-states/--timeout"
        )
        return EXIT_UNKNOWN
    return 0


def cmd_trace_summarize(args: argparse.Namespace) -> int:
    """Aggregate a ``--trace`` file back into the same per-tier table
    the live scan printed (they agree exactly, worker spans included)."""
    summary = summarize_trace(args.trace_file)
    print(summary.describe())
    return 0


def cmd_trace_serve_summary(args: argparse.Namespace) -> int:
    """Aggregate a daemon trace (``repro serve --trace``): per-endpoint
    request counts and latency percentiles, the phase breakdown of
    where request time went, planner-tier attribution, and the slowest
    requests with their ids.  The per-endpoint counts equal the
    daemon's ``/status`` ``"http"`` totals for the same run."""
    summary = summarize_serve_trace(args.trace_file, slowest=args.slowest)
    print(summary.describe())
    return 0


def cmd_trace_profile(args: argparse.Namespace) -> int:
    """Merge a trace's ``profile`` records into the hot-events table.

    Profiles merge associatively, so the table from a checkpointed
    scan's several ``profile`` records (one per run segment) or a
    parallel scan's merged workers equals the table one serial
    uninterrupted scan would print.  Streams the trace: journal size
    does not matter.
    """
    profile = SearchProfile()
    found = 0
    for rec in iter_trace(args.trace_file):
        if rec["kind"] == "profile":
            profile.merge(rec["profile"])
            found += 1
    if not found:
        print(
            "repro: no profile records in trace; record one with "
            "`repro races --trace FILE --profile FILE`",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if found > 1:
        print(f"merged {found} profile records")
    print("\n".join(profile.describe(top=args.top)))
    return 0


def cmd_trace_timeline(args: argparse.Namespace) -> int:
    """Per-worker utilization from the pool's dispatch/result spans.

    All the spans used here (``scan.*``, ``worker.*``) are stamped by
    the parent's monotonic clock, so durations across workers are
    directly comparable.  Streams the trace.
    """
    workers = {}
    scan_start = scan_end = last_t = None
    pair_times = []

    def entry(uid):
        e = workers.get(uid)
        if e is None:
            e = workers[uid] = {
                "busy": 0.0, "pairs": 0, "crashes": 0,
                "first": None, "last": None, "open": None,
                "slowest": 0.0, "slowest_pair": None,
            }
        return e

    for rec in iter_trace(args.trace_file):
        kind, t = rec["kind"], rec["t"]
        last_t = t if last_t is None else max(last_t, t)
        if kind == "scan.start":
            scan_start = t
        elif kind == "scan.end":
            scan_end = t
        elif kind == "worker.spawn":
            e = entry(rec["worker"])
            e["first"] = t if e["first"] is None else e["first"]
            e["last"] = t
        elif kind == "worker.dispatch":
            e = entry(rec["worker"])
            e["open"] = (t, rec["a"], rec["b"])
            e["first"] = t if e["first"] is None else e["first"]
            e["last"] = t
        elif kind in ("worker.result", "worker.crash", "worker.retire"):
            e = entry(rec["worker"])
            e["last"] = t
            if kind == "worker.crash":
                e["crashes"] += 1
            if e["open"] is not None and kind != "worker.retire":
                took = t - e["open"][0]
                e["busy"] += took
                if kind == "worker.result":
                    e["pairs"] += 1
                    pair_times.append(took)
                if took > e["slowest"]:
                    e["slowest"] = took
                    e["slowest_pair"] = e["open"][1:]
                e["open"] = None
    if not workers:
        if scan_start is not None:
            end = scan_end if scan_end is not None else last_t
            print(
                f"serial scan (no worker spans): "
                f"{end - scan_start:.3f}s wall"
                + ("" if scan_end is not None else ", no scan.end (killed?)")
            )
            return 0
        print("repro: no scan or worker spans in trace", file=sys.stderr)
        return EXIT_USAGE
    end = scan_end if scan_end is not None else last_t
    wall = (end - scan_start) if scan_start is not None else None
    median = sorted(pair_times)[len(pair_times) // 2] if pair_times else 0.0
    header = f"worker timeline: {len(workers)} worker(s)"
    if wall is not None:
        header += f", scan wall {wall:.3f}s"
    if scan_end is None:
        header += " (no scan.end record -- scan killed mid-flight?)"
    print(header)
    stragglers = []
    for uid in sorted(workers):
        e = workers[uid]
        lifetime = (e["last"] - e["first"]) if e["first"] is not None else 0.0
        util = 100.0 * e["busy"] / lifetime if lifetime > 0 else 0.0
        line = (
            f"  worker {uid}: pairs={e['pairs']} busy={e['busy']:.3f}s "
            f"util={util:.0f}%"
        )
        if e["crashes"]:
            line += f" crashes={e['crashes']}"
        flags = []
        if e["crashes"]:
            flags.append("crashed")
        if (
            e["slowest_pair"] is not None
            and median > 0
            and e["slowest"] >= 2 * median
        ):
            a, b = e["slowest_pair"]
            flags.append(
                f"straggler: pair ({a}, {b}) took {e['slowest']:.3f}s "
                f"({e['slowest'] / median:.1f}x median)"
            )
        if flags:
            line += "  <- " + "; ".join(flags)
            stragglers.append(uid)
        print(line)
    if not stragglers:
        print("  no stragglers (all pairs within 2x the median)")
    return 0


def cmd_sat(args: argparse.Namespace) -> int:
    formula = parse_dimacs(_read(args.formula)).to_3cnf()
    build = semaphore_reduction if args.style == "sem" else event_reduction
    red = build(formula)
    sizes = red.size_summary()
    print(
        f"reduction: {sizes['processes']} processes, {sizes['events']} events "
        f"({args.style} style)"
    )
    unsat = decide_unsat_via_ordering(red)
    verdict = "UNSAT" if unsat else "SAT"
    print(f"ordering oracle (a MHB b): {verdict}")
    if args.check:
        dpll = "UNSAT" if solve(formula) is None else "SAT"
        agrees = dpll == verdict
        print(f"DPLL cross-check: {dpll}  ({'agree' if agrees else 'DISAGREE'})")
        return 0 if agrees else 2
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    program = parse_program(_read(args.program))
    analysis = ProgramAnalysis(program, max_runs=args.max_runs)
    summary = analysis.summary()
    print("schedule-tree exploration:")
    for key, value in summary.items():
        print(f"  {key}: {value}")
    if analysis.can_deadlock:
        run = analysis.result.deadlocked_runs[0]
        print(f"  example deadlock after schedule {list(run.schedule)}: "
              f"blocked {list(run.blocked)}")
    orderings = sorted(analysis.guaranteed_orderings())
    if orderings:
        print("guaranteed label orderings (all complete runs):")
        for a, b in orderings:
            print(f"  {a} -> {b}")
    if args.races:
        budget = _budget_from_args(args)
        races = analysis.program_races(budget=budget)
        print(f"feasible races across all executions: {len(races)}")
        for (a, b), count in sorted(races.items()):
            print(f"  {a} <-> {b}  (in {count} signature(s))")
        if analysis.race_unknowns:
            n = len(analysis.race_unknowns)
            print(f"pairs undecided under the budget: {n}")
            return EXIT_UNKNOWN
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """The long-lived query daemon (see :mod:`repro.serve`)."""
    plan = _plan_from_args(args)
    faults = json.loads(args.fault_spec) if args.fault_spec else None
    limits = None
    if args.max_memory_mb is not None:
        limits = ResourceLimits(max_memory_mb=args.max_memory_mb)
    store = WitnessStore(
        args.store,
        max_entries=args.store_max_executions,
        max_bytes=args.store_max_bytes,
    )
    if args.compact:
        carried = store.compact()
        print(
            f"repro: store compacted ({carried} execution(s) carried)",
            file=sys.stderr,
        )
    tracer = None
    if args.trace:
        # once serving, a failing sink only ever drops records (the
        # daemon wraps it in FailsafeSink); an unwritable path is a
        # *startup* error and must fail loudly now
        try:
            tracer = JsonlTraceSink(
                args.trace, max_records=args.trace_max_records
            )
        except OSError as exc:
            print(
                f"repro: cannot open trace file {args.trace}: {exc}",
                file=sys.stderr,
            )
            return EXIT_USAGE
    try:
        daemon = QueryDaemon(
            store,
            port=args.port,
            host=args.host,
            workers=max(1, args.workers),
            queue_limit=args.queue_limit,
            default_timeout=args.default_timeout,
            max_timeout=args.max_timeout,
            max_states=args.max_states,
            limits=limits,
            retry=RetryPolicy(max_retries=args.retries, jitter=0.5),
            plan=plan,
            faults=faults,
            drain_grace=args.drain_grace,
            degraded_after=args.degraded_after,
            probe_interval=args.probe_interval,
            retry_after_cap=args.retry_after_cap,
            tracer=tracer,
            slow_threshold=args.slow_threshold,
            client_timeout=args.client_timeout,
        )
    except OSError as exc:
        print(
            f"repro: cannot serve on port {args.port}: {exc}", file=sys.stderr
        )
        return EXIT_USAGE

    stop = threading.Event()

    def on_signal(signum, frame):
        if signum == signal.SIGTERM:
            _SIGTERM_SEEN[0] = True
        if stop.is_set():
            raise KeyboardInterrupt  # second signal: stop draining, go
        stop.set()

    # both signals get the same clean drain; a second of either forces
    signal.signal(signal.SIGINT, on_signal)
    signal.signal(signal.SIGTERM, on_signal)
    daemon.start()
    st = store.stats()
    print(
        f"repro: serving queries on {daemon.url('/')} "
        f"(store: {args.store}, {st['executions']} execution(s), "
        f"{st['witnesses']} witness(es)); SIGTERM or Ctrl-C drains",
        file=sys.stderr,
    )
    if args.trace:
        print(
            f"repro: tracing requests to {args.trace} "
            "(repro trace serve-summary)",
            file=sys.stderr,
        )

    def report_trace() -> None:
        if not args.trace:
            return
        dropped = getattr(daemon.tracer, "total_dropped", lambda: 0)()
        note = f" ({dropped} record(s) dropped)" if dropped else ""
        print(f"repro: trace written to {args.trace}{note}", file=sys.stderr)

    try:
        while not stop.is_set():
            stop.wait(0.5)
        print(
            "repro: drain requested; finishing in-flight requests",
            file=sys.stderr,
        )
        daemon.close(drain=True)
    except KeyboardInterrupt:
        print("repro: forced shutdown", file=sys.stderr)
        daemon.close(drain=False)
        report_trace()
        return EXIT_TERMINATED if _SIGTERM_SEEN[0] else EXIT_INTERRUPTED
    report_trace()
    print("repro: drained cleanly", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Event ordering analysis for shared-memory parallel "
        "program executions (Netzer & Miller, ICPP 1990).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="simulate a program and capture its execution")
    p.add_argument("program", help="program text file")
    p.add_argument("--seed", type=int, default=0, help="random scheduler seed")
    p.add_argument("--priority", help="comma-separated priority schedule")
    p.add_argument("--max-steps", type=int, default=100_000)
    p.add_argument("--memory-model", default="sc", metavar="MODEL",
                   help="memory model to execute under: sc (default) or tso")
    p.add_argument("--save", help="write the execution as JSON")
    p.add_argument("--dot", help="write the order graph as DOT")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("analyze", help="ordering relations of a saved execution")
    p.add_argument("execution", help="execution JSON file")
    p.add_argument("--pair", nargs=2, metavar=("LABEL_A", "LABEL_B"))
    p.add_argument(
        "--relation",
        choices=["mhb", "chb", "mcw", "ccw", "mow", "cow", "mcb", "ccb", "all"],
        default="all",
    )
    p.add_argument("--matrix", help="print the named relation as a matrix")
    p.add_argument("--memory-model", default=None, metavar="MODEL",
                   help="reinterpret the execution under this memory model "
                        "(sc or tso; default: the model recorded in the file)")
    p.add_argument("--ignore-deps", action="store_true",
                   help="Section 5.3 mode: ignore shared-data dependences")
    p.add_argument("--max-states", type=int, default=None,
                   help="state budget per search; undecided queries print UNKNOWN")
    p.add_argument("--timeout", type=float, default=None,
                   help="wall-clock budget in seconds shared by all searches")
    p.add_argument("--plan", choices=sorted(_NAMED_PLANS),
                   help="named solver-portfolio tier ladder for --pair "
                   "queries (implies the three-valued verdict path)")
    p.add_argument("--backends", metavar="NAMES",
                   help="explicit comma-separated tier ladder, e.g. "
                   "'structural,observed,engine' (overrides --plan)")
    p.add_argument("--por", choices=("sleep", "hoist", "off"),
                   default="sleep",
                   help="exact-engine partial-order reduction: 'sleep' "
                   "(default) adds sleep-set pruning on top of "
                   "free-action hoisting, 'hoist' keeps hoisting only, "
                   "'off' explores the full interleaving tree (verdicts "
                   "are identical in all three modes)")
    p.add_argument("--trace", metavar="FILE",
                   help="with --pair: record the planner's query spans "
                   "as JSONL (see 'repro trace summarize')")
    p.add_argument("--metrics", metavar="FILE",
                   help="with --pair: write a Prometheus-style text "
                   "snapshot of the planner tallies")
    p.add_argument("--profile", metavar="FILE",
                   help="with --pair: profile the exact search (which "
                   "branch choices burn states), print the hot-events "
                   "table and save the snapshot JSON")
    p.add_argument("--serve", type=int, metavar="PORT", default=None,
                   help="with --pair: serve live /status, /metrics and "
                   "/healthz on 127.0.0.1:PORT while the query runs")
    p.add_argument("--failpoints", help=argparse.SUPPRESS)  # chaos schedule
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("races", help="race detection on a saved execution")
    p.add_argument("execution")
    p.add_argument("--feasible", action="store_true", help="run the exact detector too")
    p.add_argument("--memory-model", default=None, metavar="MODEL",
                   help="reinterpret the execution under this memory model "
                        "(sc or tso; default: the model recorded in the file)")
    p.add_argument("--witnesses", action="store_true")
    p.add_argument("--max-states", type=int, default=None,
                   help="state budget per pair; undecided pairs report as unknown")
    p.add_argument("--timeout", type=float, default=None,
                   help="wall-clock budget in seconds shared by the whole scan")
    p.add_argument("--per-pair-states", type=int, default=None,
                   help="tighter per-pair state cap so one hard pair cannot "
                   "starve the scan")
    p.add_argument("--jobs", type=int, default=1,
                   help="classify pairs in N crash-isolated worker processes "
                   "(implies --feasible; a worker death marks its pair "
                   "unknown, never kills the scan)")
    p.add_argument("--checkpoint", metavar="JOURNAL",
                   help="journal every classified pair to this JSONL file "
                   "(fsync'ed append per pair; implies --feasible)")
    p.add_argument("--resume", action="store_true",
                   help="with --checkpoint: reuse every pair already in the "
                   "journal instead of recomputing it")
    p.add_argument("--max-memory-mb", type=int, default=None,
                   help="kernel memory cap per worker (setrlimit); a pair "
                   "that blows it is reported unknown with resource "
                   "'memory' instead of OOMing the host")
    p.add_argument("--retries", type=int, default=1,
                   help="attempts to re-run a pair whose worker died "
                   "(default 1)")
    p.add_argument("--save", metavar="REPORT",
                   help="write the feasible-scan RaceReport as JSON "
                   "(implies --feasible)")
    p.add_argument("--plan", choices=sorted(_NAMED_PLANS),
                   help="named solver-portfolio tier ladder for the "
                   "feasible scan")
    p.add_argument("--backends", metavar="NAMES",
                   help="explicit comma-separated tier ladder, e.g. "
                   "'structural,observed,witness,engine' (overrides --plan)")
    p.add_argument("--por", choices=("sleep", "hoist", "off"),
                   default="sleep",
                   help="exact-engine partial-order reduction for the "
                   "feasible scan (see 'repro analyze --help'); part of "
                   "the checkpoint fingerprint, so --resume under a "
                   "different mode is refused")
    p.add_argument("--trace", metavar="FILE",
                   help="record the scan as structured JSONL spans "
                   "(query tiers, worker lifecycle, checkpoint writes; "
                   "implies --feasible; see 'repro trace summarize')")
    p.add_argument("--metrics", metavar="FILE",
                   help="write a Prometheus-style text snapshot of the "
                   "finished scan (pairs by outcome, tier tallies, "
                   "worker restarts; implies --feasible)")
    p.add_argument("--profile", metavar="FILE",
                   help="profile the exact searches (attribute engine "
                   "states to branch choice points), print the "
                   "hot-events table after the scan and save the "
                   "snapshot JSON (implies --feasible; pure observer: "
                   "classifications and state counts are unchanged)")
    p.add_argument("--serve", type=int, metavar="PORT", default=None,
                   help="serve live /status (JSON), /metrics "
                   "(Prometheus) and /healthz on 127.0.0.1:PORT for "
                   "the lifetime of the scan (implies --feasible)")
    p.add_argument("--fault-spec", help=argparse.SUPPRESS)  # test-only
    p.add_argument("--failpoints", help=argparse.SUPPRESS)  # chaos schedule
    p.set_defaults(func=cmd_races)

    p = sub.add_parser("trace", help="inspect a structured scan trace")
    tsub = p.add_subparsers(dest="trace_command", required=True)
    ps = tsub.add_parser(
        "summarize",
        help="re-aggregate a --trace file into the per-tier planner table",
    )
    ps.add_argument("trace_file", help="JSONL trace written by --trace")
    ps.set_defaults(func=cmd_trace_summarize)
    ps = tsub.add_parser(
        "serve-summary",
        help="aggregate a daemon trace (repro serve --trace): "
        "per-endpoint p50/p95/p99, phase breakdown, planner tiers, "
        "slowest requests with their ids",
    )
    ps.add_argument("trace_file", help="JSONL trace written by serve --trace")
    ps.add_argument("--slowest", type=int, default=10, metavar="N",
                    help="slowest requests to list (default 10)")
    ps.set_defaults(func=cmd_trace_serve_summary)
    ps = tsub.add_parser(
        "profile",
        help="merge the trace's search-profile records into the "
        "hot-events table (scans recorded with --profile)",
    )
    ps.add_argument("trace_file", help="JSONL trace written by --trace")
    ps.add_argument("--top", type=int, default=10,
                    help="rows in the hot-events table (default 10)")
    ps.set_defaults(func=cmd_trace_profile)
    ps = tsub.add_parser(
        "timeline",
        help="per-worker utilization (busy/idle, crashes, stragglers) "
        "from the pool's dispatch/result spans",
    )
    ps.add_argument("trace_file", help="JSONL trace written by --trace")
    ps.set_defaults(func=cmd_trace_timeline)

    p = sub.add_parser(
        "serve",
        help="long-lived query daemon over a persistent witness store",
    )
    p.add_argument("--port", type=int, default=8765,
                   help="TCP port (0 = ephemeral, printed on startup)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--store", required=True, metavar="DIR",
                   help="witness store directory (created if missing; "
                   "corrupt entries are quarantined and rebuilt)")
    p.add_argument("--workers", type=int, default=2,
                   help="crash-isolated query worker processes (default 2)")
    p.add_argument("--queue-limit", type=int, default=8,
                   help="admitted requests (queued + executing) before "
                   "clients get 429 + Retry-After (default 8)")
    p.add_argument("--default-timeout", type=float, default=30.0,
                   help="per-query deadline when the request names none "
                   "(default 30s); hard pairs come back UNKNOWN with "
                   "the cheapest-tier answer")
    p.add_argument("--max-timeout", type=float, default=120.0,
                   help="cap on client-requested timeouts (default 120s)")
    p.add_argument("--max-states", type=int, default=None,
                   help="cap on client-requested per-query state budgets")
    p.add_argument("--max-memory-mb", type=int, default=None,
                   help="kernel memory cap per worker (setrlimit)")
    p.add_argument("--retries", type=int, default=1,
                   help="attempts to re-run a query whose worker died")
    p.add_argument("--drain-grace", type=float, default=10.0,
                   help="seconds to let in-flight requests finish on "
                   "SIGTERM/Ctrl-C (default 10)")
    p.add_argument("--plan", choices=sorted(_NAMED_PLANS),
                   help="named solver-portfolio tier ladder for workers")
    p.add_argument("--backends", metavar="NAMES",
                   help="explicit comma-separated tier ladder "
                   "(overrides --plan)")
    p.add_argument("--store-max-executions", type=int, default=None,
                   metavar="N",
                   help="cap on stored executions; past it the "
                   "least-recently-used entry is evicted (rebuildable "
                   "by re-posting, see the README runbook)")
    p.add_argument("--store-max-bytes", type=int, default=None,
                   metavar="BYTES",
                   help="cap on the store's on-disk bytes (LRU eviction, "
                   "like --store-max-executions)")
    p.add_argument("--compact", action="store_true",
                   help="compact the store before serving: rewrite live "
                   "entries into a fresh generation, reclaiming "
                   "quarantine and eviction debris (crash-safe)")
    p.add_argument("--degraded-after", type=int, default=3, metavar="N",
                   help="consecutive failed flush passes before the "
                   "daemon flips to degraded read-only mode "
                   "(default 3; writes then answer 507)")
    p.add_argument("--probe-interval", type=float, default=2.0,
                   metavar="SECONDS",
                   help="how often a degraded daemon probes the disk "
                   "for recovery (default 2s)")
    p.add_argument("--retry-after-cap", type=float, default=300.0,
                   metavar="SECONDS",
                   help="upper bound on the Retry-After hint sent with "
                   "429 responses (default 300s)")
    p.add_argument("--trace", metavar="FILE",
                   help="append serve.* request spans (trace schema v3, "
                   "keyed by request id) to FILE as JSONL; analyze with "
                   "'repro trace serve-summary'.  Never fails a "
                   "request: sink errors become counted drops")
    p.add_argument("--trace-max-records", type=int, default=None,
                   metavar="N",
                   help="bound on trace records written; past it "
                   "records are dropped and counted (default unbounded)")
    p.add_argument("--slow-threshold", type=float, default=1.0,
                   metavar="SECONDS",
                   help="requests at least this slow are logged and "
                   "kept in the GET /debug/slow ring (default 1s)")
    p.add_argument("--client-timeout", type=float, default=10.0,
                   metavar="SECONDS",
                   help="socket timeout per client: a request body that "
                   "trickles slower stalls one handler thread at most "
                   "this long, answers 400, and is counted in "
                   "serve_client_disconnects (default 10s)")
    p.add_argument("--fault-spec", help=argparse.SUPPRESS)  # test-only
    p.add_argument("--failpoints", help=argparse.SUPPRESS)  # chaos schedule
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("sat", help="decide a DIMACS formula via the reductions")
    p.add_argument("formula")
    p.add_argument("--style", choices=["sem", "evt"], default="sem")
    p.add_argument("--check", action="store_true", help="cross-check with DPLL")
    p.set_defaults(func=cmd_sat)

    p = sub.add_parser("explore", help="exhaustively explore a program's schedules")
    p.add_argument("program")
    p.add_argument("--max-runs", type=int, default=100_000)
    p.add_argument("--races", action="store_true",
                   help="also detect feasible races across all executions")
    p.add_argument("--max-states", type=int, default=None,
                   help="state budget per race search (with --races)")
    p.add_argument("--timeout", type=float, default=None,
                   help="wall-clock budget in seconds (with --races)")
    p.set_defaults(func=cmd_explore)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "failpoints", None):
        # arm before any subcommand work (and export to the environment,
        # so spawn-context workers inherit the schedule)
        try:
            faults_mod.arm(args.failpoints)
        except faults_mod.FaultSpecError as exc:
            print(f"repro: bad --failpoints schedule: {exc}", file=sys.stderr)
            return EXIT_USAGE
    _SIGTERM_SEEN[0] = False
    _install_sigterm_relay()
    try:
        code = args.func(args)
        # a SIGTERM that surfaced as a graceful interruption deep in a
        # scan still reports as "terminated", not "Ctrl-C"
        if code == EXIT_INTERRUPTED and _SIGTERM_SEEN[0]:
            code = EXIT_TERMINATED
        return code
    except KeyboardInterrupt:
        # a Ctrl-C/SIGTERM anywhere outside the supervised scan (which
        # converts it into a partial report itself) still exits in one line
        if _SIGTERM_SEEN[0]:
            print("repro: terminated", file=sys.stderr)
            return EXIT_TERMINATED
        print("repro: interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except ParseError as exc:
        print(f"repro: parse error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except JournalError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except json.JSONDecodeError as exc:
        print(f"repro: invalid JSON input: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except ValueError as exc:
        # e.g. a JSON file that is not a repro-execution document
        print(f"repro: invalid input: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except OSError as exc:
        print(f"repro: cannot access input: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except SearchBudgetExceeded as exc:
        # unbudgeted paths (e.g. analyze --max-states without --pair going
        # through the boolean API) must still fail cleanly, not traceback
        print(f"repro: search budget exceeded ({exc.resource}); "
              "rerun with a larger --max-states/--timeout", file=sys.stderr)
        return EXIT_UNKNOWN


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
