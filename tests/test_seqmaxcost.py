"""Tests for the SS7 problem (sequencing to minimize maximum cumulative cost)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reductions.seqmaxcost import (
    SeqMaxCostInstance,
    greedy_seqmaxcost,
    random_instance,
    solve_seqmaxcost,
)

import pytest


class TestInstance:
    def test_bad_precedence_rejected(self):
        with pytest.raises(ValueError):
            SeqMaxCostInstance([1, 2], [(0, 5)], 1)
        with pytest.raises(ValueError):
            SeqMaxCostInstance([1, 2], [(0, 0)], 1)

    def test_is_forest(self):
        assert SeqMaxCostInstance([1, 1, 1], [(0, 2), (1, 2)], 1).is_forest() is False
        assert SeqMaxCostInstance([1, 1, 1], [(0, 1), (0, 2)], 1).is_forest() is True

    def test_check_sequence(self):
        inst = SeqMaxCostInstance([2, -1], [(1, 0)], 1)
        assert inst.check_sequence([1, 0])
        assert not inst.check_sequence([0, 1])  # precedence violated
        assert not inst.check_sequence([0])  # not a permutation

    def test_check_sequence_threshold(self):
        inst = SeqMaxCostInstance([2, -2], [], 1)
        assert inst.check_sequence([1, 0])
        assert not inst.check_sequence([0, 1])


class TestExactSolver:
    def test_trivial_feasible(self):
        inst = SeqMaxCostInstance([1, 1], [], 5)
        order = solve_seqmaxcost(inst)
        assert order is not None and inst.check_sequence(order)

    def test_release_first_needed(self):
        inst = SeqMaxCostInstance([3, -3], [], 0)
        order = solve_seqmaxcost(inst)
        assert order == [1, 0]

    def test_infeasible_by_threshold(self):
        assert solve_seqmaxcost(SeqMaxCostInstance([2], [], 1)) is None

    def test_infeasible_by_precedence(self):
        # the release job is forced after the consumer
        inst = SeqMaxCostInstance([2, -2], [(0, 1)], 1)
        assert solve_seqmaxcost(inst) is None

    def test_interleaving_of_chains(self):
        # two chains: +1,-1 and +1,-1 with K=1 require alternation
        inst = SeqMaxCostInstance(
            [1, -1, 1, -1], [(0, 1), (2, 3)], 1
        )
        order = solve_seqmaxcost(inst)
        assert order is not None and inst.check_sequence(order)

    def test_greedy_trap(self):
        """Greedy takes cheap jobs first and can strand itself; the
        exact solver must not."""
        # jobs: 0:+2 releases nothing; 1:-2 but only after 0 (chain);
        # 2:+1 free.  K=2.  Greedy picks 2 (+1) first, then 0 would
        # exceed?  2 then 0: 1+2=3 > 2 -> greedy stuck; exact does 0,1,2.
        inst = SeqMaxCostInstance([2, -2, 1], [(0, 1)], 2)
        assert solve_seqmaxcost(inst) is not None
        # (documenting greedy's possible failure; it may or may not fail
        # depending on tie-breaks, so only the exact claim is asserted)


class TestGreedy:
    def test_greedy_result_always_valid(self):
        for seed in range(30):
            inst = random_instance(5, seed=seed)
            order = greedy_seqmaxcost(inst)
            if order is not None:
                assert inst.check_sequence(order)

    def test_greedy_sound_never_beats_exact(self):
        for seed in range(30):
            inst = random_instance(5, seed=seed)
            if greedy_seqmaxcost(inst) is not None:
                assert solve_seqmaxcost(inst) is not None

    def test_greedy_incomplete_somewhere(self):
        """There exists an instance the exact solver schedules but the
        cheapest-first greedy cannot."""
        found = False
        for seed in range(300):
            inst = random_instance(6, seed=seed, max_cost=3, threshold=2)
            if solve_seqmaxcost(inst) is not None and greedy_seqmaxcost(inst) is None:
                found = True
                break
        assert found


class TestExactProperties:
    @given(st.integers(0, 3_000), st.integers(2, 6))
    @settings(max_examples=60, deadline=None)
    def test_witness_always_checks(self, seed, n):
        inst = random_instance(n, seed=seed)
        order = solve_seqmaxcost(inst)
        if order is not None:
            assert inst.check_sequence(order)

    @given(st.integers(0, 1_000))
    @settings(max_examples=30, deadline=None)
    def test_matches_brute_force(self, seed):
        from itertools import permutations

        inst = random_instance(4, seed=seed, forest=False)
        brute = any(
            inst.check_sequence(list(p)) for p in permutations(range(inst.num_jobs))
        )
        assert (solve_seqmaxcost(inst) is not None) == brute
