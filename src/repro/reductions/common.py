"""Shared plumbing for the SAT reductions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.budget import Budget
from repro.core.queries import OrderingQueries
from repro.model.execution import ProgramExecution, SyncStyle
from repro.sat.cnf import CNF


@dataclass
class SatReduction:
    """A constructed execution with its marker events and provenance.

    Attributes
    ----------
    cnf:
        The source formula ``B``.
    execution:
        The constructed program execution (no shared variables, no
        conditionals: every run of the program performs these events).
    a, b:
        eids of the paper's marker events.
    style:
        Which synchronization family the construction uses.
    """

    cnf: CNF
    execution: ProgramExecution
    a: int
    b: int
    style: SyncStyle

    # ------------------------------------------------------------------
    def queries(
        self,
        *,
        include_dependences: bool = True,
        binary_semaphores: bool = False,
        max_states: Optional[int] = None,
        budget: Optional[Budget] = None,
    ) -> OrderingQueries:
        return OrderingQueries(
            self.execution,
            include_dependences=include_dependences,
            binary_semaphores=binary_semaphores,
            max_states=max_states,
            budget=budget,
        )

    def size_summary(self) -> Dict[str, int]:
        exe = self.execution
        return {
            "variables": self.cnf.num_vars,
            "clauses": len(self.cnf),
            "processes": len(exe.process_names),
            "events": len(exe),
            "semaphores": len(exe.semaphores),
            "event_variables": len(exe.event_variables),
        }


def decide_unsat_via_ordering(red: SatReduction, **query_kw) -> bool:
    """Theorems 1 / 3: ``B`` unsatisfiable iff ``a MHB b``."""
    return red.queries(**query_kw).mhb(red.a, red.b)


def decide_sat_via_ordering(red: SatReduction, **query_kw) -> bool:
    """Theorems 2 / 4: ``B`` satisfiable iff ``b CHB a``."""
    return red.queries(**query_kw).chb(red.b, red.a)
