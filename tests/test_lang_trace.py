"""Tests for trace -> execution conversion (event grouping, D derivation)."""

from repro.lang.ast import (
    Assign, BinOp, Const, Fork, Join, Post, ProcessDef, Program,
    SemP, SemV, Shared, Skip, Wait,
)
from repro.lang.interpreter import run_program
from repro.lang.scheduler import FixedScheduler, PriorityScheduler
from repro.model.axioms import validate_execution
from repro.model.events import EventKind


class TestEventGrouping:
    def test_uninterrupted_run_becomes_one_event(self):
        prog = Program(
            [ProcessDef("p", [Assign("x", Const(1)), Assign("y", Const(2)), Assign("z", Const(3))])]
        )
        exe = run_program(prog).to_execution()
        assert len(exe) == 1
        assert exe.event(0).writes == {"x", "y", "z"}

    def test_sync_operation_breaks_run(self):
        prog = Program(
            [ProcessDef("p", [Assign("x", Const(1)), SemV("s"), Assign("y", Const(2))])]
        )
        exe = run_program(prog).to_execution()
        kinds = [e.kind for e in exe.events]
        assert kinds == [EventKind.COMPUTATION, EventKind.SEM_V, EventKind.COMPUTATION]

    def test_interleaving_breaks_run(self):
        prog = Program(
            [ProcessDef("a", [Skip(), Skip()]), ProcessDef("b", [Skip()])]
        )
        exe = run_program(prog, FixedScheduler(["a", "b", "a"])).to_execution()
        # a's two skips are split by b's step: three events
        assert len(exe) == 3
        assert len(exe.process_events("a")) == 2

    def test_uninterrupted_schedule_merges(self):
        prog = Program(
            [ProcessDef("a", [Skip(), Skip()]), ProcessDef("b", [Skip()])]
        )
        exe = run_program(prog, FixedScheduler(["a", "a", "b"])).to_execution()
        assert len(exe) == 2

    def test_labelled_steps_stay_separate(self):
        prog = Program(
            [ProcessDef("p", [Skip(label="a"), Skip(label="b"), Skip()])]
        )
        exe = run_program(prog).to_execution()
        assert len(exe) == 3
        assert exe.by_label("a").eid != exe.by_label("b").eid

    def test_observed_schedule_is_identity(self):
        prog = Program([ProcessDef("a", [Skip()]), ProcessDef("b", [SemV("s")])])
        exe = run_program(prog).to_execution()
        assert exe.observed_schedule == tuple(range(len(exe)))


class TestDependenceDerivation:
    def test_write_read_dependence(self):
        prog = Program(
            [
                ProcessDef("w", [Assign("x", Const(1))]),
                ProcessDef("r", [Assign("y", Shared("x"))]),
            ]
        )
        exe = run_program(prog, FixedScheduler(["w", "r"])).to_execution()
        w_eid = exe.process_events("w")[0]
        r_eid = exe.process_events("r")[0]
        assert (w_eid, r_eid) in exe.dependences

    def test_read_read_no_dependence(self):
        prog = Program(
            [
                ProcessDef("r1", [Assign("a", Shared("x"))]),
                ProcessDef("r2", [Assign("b", Shared("x"))]),
            ]
        )
        exe = run_program(prog, FixedScheduler(["r1", "r2"])).to_execution()
        r1, r2 = exe.process_events("r1")[0], exe.process_events("r2")[0]
        # the reads of x don't conflict; the writes target different vars
        assert (r1, r2) not in exe.dependences and (r2, r1) not in exe.dependences

    def test_dependence_follows_schedule_order(self):
        prog = Program(
            [
                ProcessDef("w1", [Assign("x", Const(1))]),
                ProcessDef("w2", [Assign("x", Const(2))]),
            ]
        )
        exe = run_program(prog, FixedScheduler(["w2", "w1"])).to_execution()
        w1, w2 = exe.process_events("w1")[0], exe.process_events("w2")[0]
        assert (w2, w1) in exe.dependences
        assert (w1, w2) not in exe.dependences


class TestStructureConversion:
    def test_fork_join_round_trip(self):
        child = ProcessDef("c", [Assign("x", Const(1))])
        prog = Program([ProcessDef("main", [Fork([child]), Join()])])
        exe = run_program(prog).to_execution()
        fork_eid = [e.eid for e in exe.events if e.kind is EventKind.FORK][0]
        join_eid = [e.eid for e in exe.events if e.kind is EventKind.JOIN][0]
        assert exe.fork_children[fork_eid] == ("c",)
        assert exe.join_targets[join_eid] == ("c",)
        assert exe.parent_fork["c"] == fork_eid

    def test_initial_sync_state_carried(self):
        prog = Program(
            [ProcessDef("p", [SemP("s"), Wait("v")])],
            sem_initial={"s": 1},
            var_initial={"v"},
        )
        exe = run_program(prog).to_execution()
        assert exe.sem_initial("s") == 1
        assert exe.var_initially_posted("v")

    def test_converted_executions_satisfy_axioms(self):
        from repro.workloads.programs import (
            barrier_program,
            dining_philosophers_program,
            producer_consumer_program,
        )

        for prog in (
            producer_consumer_program(2),
            barrier_program(2),
            dining_philosophers_program(3),
        ):
            for seed in range(3):
                exe = run_program(prog, seed).to_execution()
                assert validate_execution(exe) == []

    def test_pretty_renders(self):
        prog = Program([ProcessDef("p", [Assign("x", Const(1))])])
        out = run_program(prog).pretty()
        assert "x := 1" in out
