"""repro: event ordering for shared-memory parallel program executions.

A complete, executable reproduction of

    Robert H. B. Netzer and Barton P. Miller,
    "On the Complexity of Event Ordering for Shared-Memory Parallel
    Program Executions", Proc. ICPP 1990 (UW-Madison TR 908).

The library models program executions as the paper's triple
``P = <E, T, D>``, decides all six Table 1 ordering relations exactly
(with witness schedules), implements the polynomial approximation
algorithms the paper compares against, validates the four hardness
theorems empirically through their 3CNFSAT reductions, and detects
apparent and feasible data races.

Quick start
-----------
>>> from repro import ExecutionBuilder, OrderingQueries
>>> b = ExecutionBuilder()
>>> p1, p2 = b.process("p1"), b.process("p2")
>>> v = p1.sem_v("s")          # V(s)
>>> p = p2.sem_p("s")          # P(s), semaphore starts at 0
>>> q = OrderingQueries(b.build())
>>> q.chb(v, p)                # V could complete before P begins
True
>>> q.chb(p, v)                # P can never complete before V begins
False
>>> q.ccw(v, p)                # ... but they can overlap (P blocks)
True

See ``examples/`` for full walk-throughs and ``benchmarks/`` for the
per-table/per-figure reproduction harness.
"""

from repro.budget import Budget, Truth, Verdict
from repro.model import (
    Access,
    Event,
    EventKind,
    ExecutionBuilder,
    ProgramExecution,
    SyncStyle,
    validate_execution,
)
from repro.core import (
    ALL_RELATIONS,
    FeasibilityEngine,
    OrderingAnalyzer,
    OrderingQueries,
    RelationName,
    SearchBudgetExceeded,
    Witness,
    relations_by_enumeration,
)
from repro.lang import Program, ProcessDef, run_program
from repro.lang.parser import ParseError, parse_program
from repro.approx import BestEffortOrdering, HMWAnalysis, TaskGraph, VectorClockAnalysis
from repro.races import RaceDetector
from repro.solve import PlannerReport, QueryPlanner, SolveContext
from repro.reductions import (
    decide_sat_via_ordering,
    decide_unsat_via_ordering,
    event_reduction,
    semaphore_reduction,
)
from repro.sat import CNF, solve as sat_solve
from repro.analysis import ProgramAnalysis, explore_program
from repro.encoding import OrderSatEncoder, sat_chb, sat_is_feasible
from repro.model.serialize import load as load_execution, save as save_execution

__version__ = "1.0.0"

__all__ = [
    # budgets & three-valued verdicts
    "Budget",
    "Truth",
    "Verdict",
    # model
    "Access",
    "Event",
    "EventKind",
    "ExecutionBuilder",
    "ProgramExecution",
    "SyncStyle",
    "validate_execution",
    # core
    "ALL_RELATIONS",
    "FeasibilityEngine",
    "OrderingAnalyzer",
    "OrderingQueries",
    "RelationName",
    "SearchBudgetExceeded",
    "Witness",
    "relations_by_enumeration",
    # language / simulator
    "Program",
    "ProcessDef",
    "run_program",
    "parse_program",
    "ParseError",
    # approximations
    "HMWAnalysis",
    "TaskGraph",
    "VectorClockAnalysis",
    "BestEffortOrdering",
    # races
    "RaceDetector",
    # solver portfolio
    "PlannerReport",
    "QueryPlanner",
    "SolveContext",
    # reductions
    "decide_sat_via_ordering",
    "decide_unsat_via_ordering",
    "event_reduction",
    "semaphore_reduction",
    # sat
    "CNF",
    "sat_solve",
    # program-level analysis & persistence
    "ProgramAnalysis",
    "explore_program",
    "OrderSatEncoder",
    "sat_chb",
    "sat_is_feasible",
    "load_execution",
    "save_execution",
    "__version__",
]
