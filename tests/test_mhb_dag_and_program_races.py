"""Tests for the MHB DAG view and program-level race aggregation."""

from repro.analysis.explore import ProgramAnalysis
from repro.core.relations import OrderingAnalyzer, RelationName
from repro.lang.parser import parse_program
from repro.model.builder import ExecutionBuilder
from repro.util.graphs import reachable_from
from repro.workloads.programs import figure1_program


class TestMhbDag:
    def test_closure_equals_relation(self):
        b = ExecutionBuilder()
        p = b.process("p")
        x, y, z = p.skip(), p.skip(), p.skip()
        w = b.process("q").sem_v("s")
        v = b.process("r").sem_p("s")
        ana = OrderingAnalyzer(b.build())
        dag = ana.mhb_dag()
        mhb = ana.relation(RelationName.MHB)
        closed = set()
        for node in dag.nodes:
            closed.update((node, m) for m in reachable_from(dag, node))
        assert closed == set(mhb.pairs)

    def test_reduction_drops_transitive_edge(self):
        b = ExecutionBuilder()
        p = b.process("p")
        x, y, z = p.skip(), p.skip(), p.skip()
        dag = OrderingAnalyzer(b.build()).mhb_dag()
        assert dag.has_edge(x, y) and dag.has_edge(y, z)
        assert not dag.has_edge(x, z)

    def test_dag_renders_via_viz(self):
        from repro import viz
        from repro.workloads.programs import figure1_execution

        exe = figure1_execution()
        dag = OrderingAnalyzer(exe).mhb_dag()
        # nodes are eids of the same execution: DOT export applies
        assert len(dag) == len(exe)


class TestProgramRaces:
    def test_figure1_race_found_across_signatures(self):
        ana = ProgramAnalysis(figure1_program())
        races = ana.program_races()
        # the X write/read race exists in both branch signatures
        assert ("x_assign", "x_test") in races
        assert races[("x_assign", "x_test")] == 2

    def test_race_free_program(self):
        src = """
        proc a { V(s) }
        proc b { P(s); x := 1 }
        proc c { P(t) }
        proc d { V(t) }
        """
        ana = ProgramAnalysis(parse_program(src))
        assert ana.program_races() == {}

    def test_signature_deduplication(self):
        # two unsynchronized writers: many runs, one signature, one race
        src = "proc a { x := 1 }\nproc b { x := 2 }"
        ana = ProgramAnalysis(parse_program(src))
        races = ana.program_races()
        assert len(races) == 1
        assert all(count == 1 for count in races.values())

    def test_branch_dependent_race_counted_once_per_signature(self):
        ana = ProgramAnalysis(figure1_program())
        races = ana.program_races()
        # at most one counted occurrence per distinct event signature
        assert all(count <= len(ana.event_signatures()) for count in races.values())
