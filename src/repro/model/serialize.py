"""JSON (de)serialization of program executions and race reports.

Executions are plain data, so traces captured once (from the simulator
or constructed by a reduction) can be saved, shared and re-analyzed --
the CLI's ``analyze`` command consumes this format.  The schema is
versioned and deliberately explicit; loading validates through the
normal :class:`~repro.model.execution.ProgramExecution` constructor, so
a corrupt document fails loudly rather than producing a bad model.

Race-scan results round-trip too: :class:`~repro.core.witness.Witness`
schedules, per-pair classifications and whole
:class:`~repro.races.detector.RaceReport` documents, each under its own
versioned schema.  Witnesses and classifications serialize *relative to
an execution* (they store event ids and schedule points, not events),
so the checkpoint journal can record one line per pair and rebuild the
objects against the journal's execution on resume.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional

from repro.model.events import Access, Event, EventKind
from repro.model.execution import ProgramExecution
from repro.util.fileio import atomic_write_text

# execution schema history:
#   1 -- the original SC-only triple <E, T, D>
#   2 -- adds "memory_model"; version-1 documents still load (absent
#        field means "sc", the only model version 1 could describe)
FORMAT_VERSION = 2
_READABLE_EXECUTION_VERSIONS = (1, 2)
# report schema history:
#   1 -- races + three-valued classifications
#   2 -- adds per-pair "decided_by" provenance and the "planner"
#        per-tier tally block; version-1 documents still load (the new
#        fields default to absent)
#   3 -- the embedded execution document moves to execution version 2
#        (memory model); versions 1-2 still load as SC
REPORT_FORMAT_VERSION = 3
_READABLE_REPORT_VERSIONS = (1, 2, 3)
PLANNER_REPORT_FORMAT_VERSION = 1


def execution_to_dict(exe: ProgramExecution) -> Dict[str, Any]:
    """A JSON-ready dict describing the execution."""
    return {
        "format": "repro-execution",
        "version": FORMAT_VERSION,
        "events": [
            {
                "eid": e.eid,
                "process": e.process,
                "index": e.index,
                "kind": e.kind.name,
                "obj": e.obj,
                "accesses": [
                    {"variable": a.variable, "write": a.is_write} for a in e.accesses
                ],
                "label": e.label,
            }
            for e in exe.events
        ],
        "processes": {p: list(exe.process_events(p)) for p in exe.process_names},
        "fork_children": {str(k): list(v) for k, v in exe.fork_children.items()},
        "join_targets": {str(k): list(v) for k, v in exe.join_targets.items()},
        "parent_fork": dict(exe.parent_fork),
        "sem_initial": {s: exe.sem_initial(s) for s in exe.semaphores},
        "var_initial": [v for v in exe.event_variables if exe.var_initially_posted(v)],
        "dependences": sorted(list(pair) for pair in exe.dependences),
        "observed_schedule": list(exe.observed_schedule)
        if exe.observed_schedule is not None
        else None,
        "memory_model": exe.memory_model,
    }


def execution_from_dict(data: Dict[str, Any]) -> ProgramExecution:
    """Inverse of :func:`execution_to_dict` (validating)."""
    if data.get("format") != "repro-execution":
        raise ValueError("not a repro-execution document")
    if data.get("version") not in _READABLE_EXECUTION_VERSIONS:
        raise ValueError(
            f"unsupported format version {data.get('version')!r} "
            f"(this library reads versions {list(_READABLE_EXECUTION_VERSIONS)})"
        )
    events = []
    for rec in data["events"]:
        events.append(
            Event(
                eid=int(rec["eid"]),
                process=rec["process"],
                index=int(rec["index"]),
                kind=EventKind[rec["kind"]],
                obj=rec.get("obj"),
                accesses=tuple(
                    Access(a["variable"], bool(a["write"]))
                    for a in rec.get("accesses", ())
                ),
                label=rec.get("label"),
            )
        )
    return ProgramExecution(
        events,
        {p: list(eids) for p, eids in data["processes"].items()},
        fork_children={int(k): list(v) for k, v in data.get("fork_children", {}).items()},
        join_targets={int(k): list(v) for k, v in data.get("join_targets", {}).items()},
        parent_fork=dict(data.get("parent_fork", {})),
        sem_initial=dict(data.get("sem_initial", {})),
        var_initial=list(data.get("var_initial", ())),
        dependences=[tuple(pair) for pair in data.get("dependences", ())],
        observed_schedule=data.get("observed_schedule"),
        # version-1 documents predate the memory-model axis: they could
        # only describe SC executions, so the absent field means "sc".
        # An unknown name fails loudly inside the constructor.
        memory_model=data.get("memory_model", "sc"),
    )


def execution_fingerprint(exe: ProgramExecution) -> str:
    """Content identity of one execution: the sha256 of its canonical
    JSON document.

    This is the key of the daemon's persistent witness store and of the
    ``repro serve`` API: two clients POSTing byte-different but
    semantically identical documents get the same fingerprint, so their
    queries share one witness pool.  Unlike
    :func:`~repro.supervise.checkpoint.scan_fingerprint` it covers the
    execution *only* -- witnesses are facts about ``F``, valid under
    any budget or solver plan.
    """
    blob = json.dumps(
        execution_to_dict(exe), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# witnesses, pair classifications and race reports
#
# These import from repro.core / repro.races lazily: both packages
# import the model, so top-level imports here would be circular.
# ----------------------------------------------------------------------
def witness_to_dict(witness) -> Dict[str, Any]:
    """A JSON-ready dict for a :class:`~repro.core.witness.Witness`.

    Only the schedule points are stored; the execution is context the
    caller must supply again on load.
    """
    return {"points": [[p.eid, int(p.is_end)] for p in witness.points]}


def witness_from_dict(exe: ProgramExecution, data: Dict[str, Any]):
    """Rebuild a witness against ``exe`` (inverse of
    :func:`witness_to_dict`)."""
    from repro.core.engine import Point
    from repro.core.witness import Witness

    points = [Point(int(eid), bool(end)) for eid, end in data["points"]]
    return Witness(exe, points)


def classification_to_dict(c) -> Dict[str, Any]:
    """A JSON-ready dict for a
    :class:`~repro.races.detector.PairClassification`."""
    return {
        "a": c.a,
        "b": c.b,
        "status": c.status,
        "variables": sorted(c.variables),
        "resource": c.resource,
        "witness": witness_to_dict(c.witness) if c.witness is not None else None,
        "decided_by": c.decided_by,
    }


def classification_from_dict(exe: ProgramExecution, data: Dict[str, Any]):
    """Inverse of :func:`classification_to_dict`, rebuilt against ``exe``."""
    from repro.races.detector import PairClassification

    witness = data.get("witness")
    return PairClassification(
        a=int(data["a"]),
        b=int(data["b"]),
        status=data["status"],
        variables=frozenset(data.get("variables", ())),
        witness=witness_from_dict(exe, witness) if witness is not None else None,
        resource=data.get("resource"),
        decided_by=data.get("decided_by"),  # absent in version-1 journals
    )


def planner_report_to_dict(report) -> Dict[str, Any]:
    """A JSON-ready dict for a
    :class:`~repro.solve.planner.PlannerReport`."""
    doc = {
        "format": "repro-planner-report",
        "version": PLANNER_REPORT_FORMAT_VERSION,
    }
    doc.update(report.snapshot())
    return doc


def planner_report_from_dict(data: Dict[str, Any]):
    """Inverse of :func:`planner_report_to_dict` (validating)."""
    from repro.solve.planner import PlannerReport

    if data.get("format") != "repro-planner-report":
        raise ValueError("not a repro-planner-report document")
    if data.get("version") != PLANNER_REPORT_FORMAT_VERSION:
        raise ValueError(
            f"unsupported planner-report version {data.get('version')!r} "
            f"(this library reads version {PLANNER_REPORT_FORMAT_VERSION})"
        )
    return PlannerReport.from_snapshot(data)


def report_to_dict(report, *, trace: Optional[str] = None) -> Dict[str, Any]:
    """A JSON-ready dict for a :class:`~repro.races.detector.RaceReport`
    (embeds the execution, so the document is self-contained).

    ``trace`` optionally references the structured trace file
    (:mod:`repro.obs.trace`) recorded alongside the scan; readers of
    older documents simply find the field absent.
    """
    doc = {
        "format": "repro-race-report",
        "version": REPORT_FORMAT_VERSION,
        "kind": report.kind,
        "conflicting_pairs_examined": report.conflicting_pairs_examined,
        "interrupted": report.interrupted,
        "execution": execution_to_dict(report.execution),
        "races": [
            {
                "a": r.a,
                "b": r.b,
                "variables": sorted(r.variables),
                "kind": r.kind,
                "witness": witness_to_dict(r.witness)
                if r.witness is not None
                else None,
            }
            for r in report.races
        ],
        "classifications": [
            classification_to_dict(c) for c in report.classifications
        ],
        "planner": planner_report_to_dict(report.planner)
        if report.planner is not None
        else None,
    }
    if trace is not None:
        doc["trace"] = {"path": trace, "format": "repro-trace"}
    return doc


def report_from_dict(data: Dict[str, Any]):
    """Inverse of :func:`report_to_dict` (validating)."""
    from repro.races.detector import Race, RaceReport

    if data.get("format") != "repro-race-report":
        raise ValueError("not a repro-race-report document")
    if data.get("version") not in _READABLE_REPORT_VERSIONS:
        raise ValueError(
            f"unsupported race-report version {data.get('version')!r} "
            f"(this library reads versions {list(_READABLE_REPORT_VERSIONS)})"
        )
    exe = execution_from_dict(data["execution"])
    races = []
    for rec in data.get("races", ()):
        witness = rec.get("witness")
        races.append(
            Race(
                a=int(rec["a"]),
                b=int(rec["b"]),
                variables=frozenset(rec.get("variables", ())),
                kind=rec["kind"],
                witness=witness_from_dict(exe, witness)
                if witness is not None
                else None,
            )
        )
    classifications = [
        classification_from_dict(exe, rec)
        for rec in data.get("classifications", ())
    ]
    planner = data.get("planner")  # absent in version-1 documents
    return RaceReport(
        execution=exe,
        races=races,
        kind=data["kind"],
        conflicting_pairs_examined=int(data["conflicting_pairs_examined"]),
        classifications=classifications,
        interrupted=bool(data.get("interrupted", False)),
        planner=planner_report_from_dict(planner) if planner is not None else None,
    )


def save_report(
    report, path: str, *, indent: Optional[int] = 2, trace: Optional[str] = None
) -> None:
    # atomic: --save targets are read by dashboards/scripts while the
    # next scan may be rewriting them
    atomic_write_text(
        path,
        json.dumps(
            report_to_dict(report, trace=trace), indent=indent, sort_keys=True
        )
        + "\n",
    )


def load_report(path: str):
    with open(path) as fh:
        return report_from_dict(json.load(fh))


# ----------------------------------------------------------------------
def dumps(exe: ProgramExecution, *, indent: int = 2) -> str:
    return json.dumps(execution_to_dict(exe), indent=indent, sort_keys=True)


def loads(text: str) -> ProgramExecution:
    return execution_from_dict(json.loads(text))


def save(exe: ProgramExecution, path: str) -> None:
    atomic_write_text(path, dumps(exe) + "\n")


def load(path: str) -> ProgramExecution:
    with open(path) as fh:
        return loads(fh.read())
