"""Tests for the vector-clock baseline."""

import pytest
from hypothesis import given, settings

from repro.approx.vectorclock import VectorClockAnalysis
from repro.core.queries import OrderingQueries
from repro.core.witness import Witness
from repro.model.builder import ExecutionBuilder
from repro.util.relations import is_strict_partial_order

from tests.strategies import medium_semaphore_executions, small_event_executions


class TestBasics:
    def test_requires_schedule(self):
        b = ExecutionBuilder()
        b.process("p").skip()
        with pytest.raises(ValueError, match="observed schedule"):
            VectorClockAnalysis(b.build())

    def test_program_order_captured(self):
        b = ExecutionBuilder()
        p = b.process("p")
        x, y = p.skip(), p.skip()
        vc = VectorClockAnalysis(b.build(observed_schedule=[x, y]))
        assert vc.happened_before(x, y)
        assert not vc.happened_before(y, x)

    def test_independent_events_concurrent(self):
        b = ExecutionBuilder()
        x = b.process("A").skip()
        y = b.process("B").skip()
        vc = VectorClockAnalysis(b.build(observed_schedule=[x, y]))
        assert vc.concurrent(x, y)

    def test_semaphore_pairing_edge(self):
        b = ExecutionBuilder()
        v = b.process("A").sem_v("s")
        p = b.process("B").sem_p("s")
        vc = VectorClockAnalysis(b.build(observed_schedule=[v, p]))
        assert vc.happened_before(v, p)

    def test_initial_tokens_skip_pairing(self):
        # the first P consumes the initial token, not A's V
        b = ExecutionBuilder()
        b.semaphore("s", 1)
        v = b.process("A").sem_v("s")
        proc = b.process("B")
        p1 = proc.sem_p("s")
        p2 = proc.sem_p("s")
        vc = VectorClockAnalysis(b.build(observed_schedule=[p1, v, p2]))
        assert not vc.happened_before(v, p1)
        assert vc.happened_before(v, p2)

    def test_post_wait_edge(self):
        b = ExecutionBuilder()
        post = b.process("A").post("v")
        wait = b.process("B").wait("v")
        vc = VectorClockAnalysis(b.build(observed_schedule=[post, wait]))
        assert vc.happened_before(post, wait)

    def test_clear_breaks_pairing(self):
        b = ExecutionBuilder()
        a = b.process("A")
        post1 = a.post("v")
        clear = a.clear("v")
        post2 = a.post("v")
        wait = b.process("B").wait("v")
        vc = VectorClockAnalysis(
            b.build(observed_schedule=[post1, clear, post2, wait])
        )
        # the wait pairs with the post after the clear (and inherits the
        # rest transitively through program order)
        assert (post2, wait) in [e for e in vc.sync_edges]

    def test_fork_join_edges(self):
        b = ExecutionBuilder()
        main = b.process("main")
        f = main.fork()
        c = b.process("c", parent=f).skip()
        j = main.join(f)
        vc = VectorClockAnalysis(b.build(observed_schedule=[f.eid, c, j]))
        assert vc.happened_before(f.eid, c)
        assert vc.happened_before(c, j)

    def test_inconsistent_schedule_rejected(self):
        b = ExecutionBuilder()
        p = b.process("p")
        x, y = p.skip(), p.skip()
        with pytest.raises(ValueError, match="not consistent"):
            VectorClockAnalysis(b.build(), schedule=[y, x])


class TestAgainstExact:
    @given(medium_semaphore_executions())
    @settings(max_examples=25, deadline=None)
    def test_vc_relation_is_a_partial_order(self, exe):
        vc = VectorClockAnalysis(exe)
        assert is_strict_partial_order(vc.relation())

    @given(medium_semaphore_executions())
    @settings(max_examples=15, deadline=None)
    def test_vc_orderings_hold_in_observed_run(self, exe):
        """Every VC edge is real *in the observed execution*: replaying
        the observed schedule shows a completing before b."""
        vc = VectorClockAnalysis(exe)
        pos = {eid: i for i, eid in enumerate(exe.observed_schedule)}
        for a, b in vc.relation().pairs:
            assert pos[a] < pos[b]

    @given(small_event_executions())
    @settings(max_examples=15, deadline=None)
    def test_exact_mcb_implies_vc_or_concurrent(self, exe):
        """VC misses no *observed* ordering: if a completed before b in
        the observed schedule, VC never claims b -> a."""
        vc = VectorClockAnalysis(exe)
        pos = {eid: i for i, eid in enumerate(exe.observed_schedule)}
        for a in exe.eids:
            for b in exe.eids:
                if a != b and pos[a] < pos[b]:
                    assert not vc.happened_before(b, a)
