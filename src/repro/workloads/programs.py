"""Canned concurrent programs, including the paper's Figure 1.

Figure 1 (reconstructed from the prose of Section 4 -- the figure
graphic itself describes a fragment where a parent forks three tasks,
the first of which "completely executes before the other two"):

* task ``t1``: ``Post(ev); X := 1``   (the *left-most* Post)
* task ``t2``: ``if X = 1 then Post(ev) else Wait(ev)``  (the
  *right-most* Post, in the observed then-branch)
* task ``t3``: ``Wait(ev)``

In the observed execution ``t1`` runs first, so ``t2`` reads ``X = 1``
and issues the second Post.  The shared-data dependence
``X := 1  ->D  if X = 1`` must recur in every feasible execution (F3),
which chains ``Post_left ->T X:=1 ->T if ->T Post_right``: the two
Posts are *must-ordered*.  The EGP task graph ignores ``D`` and shows
no path between them -- exactly the paper's criticism.  If the
dependence did *not* occur, the else branch would run and a Wait would
replace the right-most Post, changing the event set -- which is why
executions violating F3 are not feasible alternatives.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.lang.ast import (
    Assign,
    BinOp,
    Clear,
    Const,
    Fork,
    If,
    Join,
    LocalAssign,
    Local,
    Post,
    ProcessDef,
    Program,
    SemP,
    SemV,
    Shared,
    Skip,
    Wait,
    While,
)
from repro.lang.interpreter import run_program
from repro.lang.scheduler import PriorityScheduler
from repro.model.execution import ProgramExecution


def figure1_program() -> Program:
    """The Figure 1 fragment (see module docstring)."""
    t1 = ProcessDef("t1", [Post("ev", label="post_left"), Assign("X", Const(1), label="x_assign")])
    t2 = ProcessDef(
        "t2",
        [
            If(
                BinOp("==", Shared("X"), Const(1)),
                then=[Post("ev", label="post_right")],
                orelse=[Wait("ev", label="wait_else")],
                label="x_test",
            )
        ],
    )
    t3 = ProcessDef("t3", [Wait("ev", label="wait_t3")])
    main = ProcessDef("main", [Fork([t1, t2, t3], label="fork_main"), Join(label="join_main")])
    return Program([main], shared_initial={"X": 0})


def figure1_execution() -> ProgramExecution:
    """The observed execution of Figure 1: ``t1`` completes first.

    Running under a priority scheduler (main, then t1 to completion,
    then t2, then t3) realizes exactly the paper's scenario, so the
    then-branch executes and both Posts appear in the event set.
    """
    trace = run_program(figure1_program(), PriorityScheduler(["main", "t1", "t2", "t3"]))
    return trace.to_execution()


def producer_consumer_program(items: int = 3, *, buffer_size: int = 2) -> Program:
    """A bounded-buffer producer/consumer over counting semaphores.

    ``slots`` starts at the buffer size, ``full`` at zero; the shared
    cursor variables create genuine data dependences between producer
    and consumer computation events.
    """
    producer = ProcessDef(
        "producer",
        [
            stmt
            for i in range(items)
            for stmt in (
                SemP("slots"),
                Assign("buf_head", Const(i + 1)),
                SemV("full"),
            )
        ],
    )
    consumer = ProcessDef(
        "consumer",
        [
            stmt
            for _ in range(items)
            for stmt in (
                SemP("full"),
                LocalAssign("got", Shared("buf_head")),
                SemV("slots"),
            )
        ],
    )
    main = ProcessDef("main", [Fork([producer, consumer]), Join()])
    return Program([main], sem_initial={"slots": buffer_size, "full": 0})


def barrier_program(workers: int = 3) -> Program:
    """A two-phase barrier built from event variables.

    Each worker posts its arrival variable and waits for ``go``; the
    coordinator waits for every arrival, then posts ``go``.  After the
    barrier each worker writes a distinct shared variable -- those
    writes are all must-after the coordinator's post.
    """
    defs = [
        ProcessDef(
            f"w{k}",
            [
                Post(f"arrive{k}"),
                Wait("go"),
                Assign(f"out{k}", Const(k)),
            ],
        )
        for k in range(workers)
    ]
    coordinator = ProcessDef(
        "coord",
        [Wait(f"arrive{k}") for k in range(workers)] + [Post("go")],
    )
    main = ProcessDef("main", [Fork(defs + [coordinator]), Join()])
    return Program([main])


def dining_philosophers_program(n: int = 3, *, rounds: int = 1) -> Program:
    """Asymmetric dining philosophers (deadlock-free ordering).

    Philosopher ``i`` takes forks ``min(i, i+1 mod n)`` then
    ``max(...)`` -- the classic total-order fix -- and "eats" by
    writing a shared counter, so eat events of neighbours conflict.
    """
    philosophers = []
    for i in range(n):
        left, right = i, (i + 1) % n
        first, second = min(left, right), max(left, right)
        body = []
        for _ in range(rounds):
            body += [
                SemP(f"fork{first}"),
                SemP(f"fork{second}"),
                Assign(f"meals{i}", BinOp("+", Shared(f"meals{i}"), Const(1))),
                Assign("table", Const(i)),
                SemV(f"fork{second}"),
                SemV(f"fork{first}"),
            ]
        philosophers.append(ProcessDef(f"phil{i}", body))
    main = ProcessDef("main", [Fork(philosophers), Join()])
    return Program([main], sem_initial={f"fork{i}": 1 for i in range(n)})


def data_dependent_branch_program() -> Program:
    """Synchronization chosen by a shared read (Figure-1-like, with
    semaphores): the writer's value decides whether the reader signals
    or consumes.  Exercises F3: feasible executions must preserve the
    write->read dependence, which freezes the branch."""
    writer = ProcessDef("writer", [SemV("ready"), Assign("flag", Const(1))])
    reader = ProcessDef(
        "reader",
        [
            If(
                BinOp("==", Shared("flag"), Const(1)),
                then=[SemV("done")],
                orelse=[SemP("ready"), SemV("done")],
            )
        ],
    )
    sink = ProcessDef("sink", [SemP("done")])
    main = ProcessDef("main", [Fork([writer, reader, sink]), Join()])
    return Program([main], shared_initial={"flag": 0})


def readers_writers_program(readers: int = 2, *, writes: int = 1) -> Program:
    """Readers/writers with a writer-preference token scheme.

    The writer takes the exclusive token; each reader takes and returns
    it around its read (a simple mutex formulation, enough to create
    the classic ordered-but-unordered access pattern: reads conflict
    with the write but not with each other).
    """
    writer_body = []
    for k in range(writes):
        writer_body += [
            SemP("token"),
            Assign("data", Const(k + 1)),
            SemV("token"),
        ]
    procs = [ProcessDef("writer", writer_body)]
    for r in range(readers):
        procs.append(
            ProcessDef(
                f"reader{r}",
                [
                    SemP("token"),
                    LocalAssign("seen", Shared("data")),
                    SemV("token"),
                ],
            )
        )
    main = ProcessDef("main", [Fork(procs), Join()])
    return Program([main], sem_initial={"token": 1}, shared_initial={"data": 0})


def reusable_barrier_program(workers: int = 2, phases: int = 2) -> Program:
    """A Clear-reusing two-phase barrier (exercises Post/Wait/Clear).

    The coordinator waits for every worker's arrival, clears the
    arrival latches, then posts ``go{phase}``; workers write a
    per-phase shared cell after each release.  Clear is what makes the
    latch reusable across phases -- exactly the primitive the paper
    singles out (Theorems 3/4 need it; without it the complexity is
    open).
    """
    worker_defs = []
    for k in range(workers):
        body = []
        for ph in range(phases):
            body += [
                Post(f"arrive{k}"),
                Wait(f"go{ph}"),
                Assign(f"out{k}_{ph}", Const(ph)),
                # re-arm for the next phase by waiting on the clear ack
                Wait(f"cleared{ph}") if ph < phases - 1 else Skip(),
            ]
        worker_defs.append(ProcessDef(f"w{k}", body))
    coord_body = []
    for ph in range(phases):
        coord_body += [Wait(f"arrive{k}") for k in range(workers)]
        coord_body += [Clear(f"arrive{k}") for k in range(workers)]
        coord_body.append(Post(f"go{ph}"))
        if ph < phases - 1:
            coord_body.append(Post(f"cleared{ph}"))
    worker_defs.append(ProcessDef("coord", coord_body))
    main = ProcessDef("main", [Fork(worker_defs), Join()])
    return Program([main])


def work_queue_program(items: int = 3, workers: int = 2) -> Program:
    """A counting-semaphore work queue: the master publishes items and
    signals ``work``; each worker repeatedly takes a slot.  Item counts
    are split statically so the program is loop-free (the paper's
    program class)."""
    master = ProcessDef(
        "master",
        [
            stmt
            for i in range(items)
            for stmt in (Assign("queue", Const(i + 1)), SemV("work"))
        ],
    )
    per_worker = [items // workers + (1 if w < items % workers else 0) for w in range(workers)]
    procs = [master]
    for w, count in enumerate(per_worker):
        body = []
        for _ in range(count):
            body += [SemP("work"), LocalAssign("got", Shared("queue"))]
        procs.append(ProcessDef(f"worker{w}", body))
    main = ProcessDef("main", [Fork(procs), Join()])
    return Program([main], shared_initial={"queue": 0})


def pipeline_program(stages: int = 3) -> Program:
    """A hand-off pipeline: stage ``k`` reads ``data{k}``, writes
    ``data{k+1}`` and signals stage ``k+1`` through a semaphore."""
    defs = []
    for k in range(stages):
        body = []
        if k > 0:
            body.append(SemP(f"stage{k}"))
        body.append(
            Assign(f"data{k + 1}", BinOp("+", Shared(f"data{k}"), Const(1)))
        )
        if k < stages - 1:
            body.append(SemV(f"stage{k + 1}"))
        defs.append(ProcessDef(f"stage{k}_proc", body))
    main = ProcessDef("main", [Fork(defs), Join()])
    return Program([main], shared_initial={"data0": 0})
