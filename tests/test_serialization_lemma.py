"""The serialization lemma and its corollary (DESIGN.md Section 4.2).

Lemma: an ``end(a) < begin(b)`` constraint is satisfiable by a legal
point schedule iff by a legal *serial* schedule.  The engine's CHB fast
path relies on it; these tests check it against full point-space
enumeration.

Corollary (lazy-begin model): every feasible execution collapses to a
serial one, so no distinct pair is concurrent in *all* feasible
executions -- ``MCW`` is empty and ``COW`` total whenever ``F`` is
non-empty.
"""

from hypothesis import given, settings

from repro.core.engine import Point
from repro.core.enumerate import enumerate_point_schedules, enumerate_serial_schedules
from repro.core.queries import OrderingQueries
from repro.core.relations import OrderingAnalyzer, RelationName

from tests.strategies import small_event_executions, small_semaphore_executions


def chb_set_by_point_enumeration(exe):
    """All (a, b) with end(a) < begin(b) in some legal point schedule."""
    out = set()
    n = len(exe)
    for sched in enumerate_point_schedules(exe):
        pos = {p: i for i, p in enumerate(sched)}
        for a in range(n):
            for b in range(n):
                if a != b and pos[Point(a, True)] < pos[Point(b, False)]:
                    out.add((a, b))
    return out


def chb_set_by_serial_enumeration(exe):
    out = set()
    for sched in enumerate_serial_schedules(exe):
        pos = {eid: i for i, eid in enumerate(sched)}
        n = len(sched)
        for a in range(n):
            for b in range(n):
                if a != b and pos[a] < pos[b]:
                    out.add((a, b))
    return out


class TestSerializationLemma:
    @given(small_semaphore_executions())
    @settings(max_examples=20, deadline=None)
    def test_chb_serial_equals_point_semaphores(self, exe):
        assert chb_set_by_serial_enumeration(exe) == chb_set_by_point_enumeration(exe)

    @given(small_event_executions())
    @settings(max_examples=20, deadline=None)
    def test_chb_serial_equals_point_events(self, exe):
        assert chb_set_by_serial_enumeration(exe) == chb_set_by_point_enumeration(exe)

    @given(small_semaphore_executions())
    @settings(max_examples=20, deadline=None)
    def test_end_order_collapse_is_legal(self, exe):
        """Collapsing any legal point schedule by completion order
        yields a schedule that the serial enumerator also produces."""
        serial = set(enumerate_serial_schedules(exe))
        for sched in enumerate_point_schedules(exe):
            collapsed = tuple(p.eid for p in sched if p.is_end)
            assert collapsed in serial


class TestCorollaryDegenerateMCW:
    @given(small_semaphore_executions())
    @settings(max_examples=25, deadline=None)
    def test_mcw_empty_cow_total_when_feasible(self, exe):
        q = OrderingQueries(exe)
        assert q.has_feasible_execution()  # generators guarantee this
        ana = OrderingAnalyzer(exe)
        n = len(exe)
        assert len(ana.relation(RelationName.MCW)) == 0
        assert len(ana.relation(RelationName.COW)) == n * (n - 1)
