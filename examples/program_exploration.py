#!/usr/bin/env python3
"""Whole-program analysis from text programs.

Programs can be written in the library's text syntax, simulated,
explored exhaustively (every schedule), and analyzed -- this example
walks a ticket-handoff program through all of it:

1. parse a text program;
2. exhaust its schedule tree (all runs, deadlock census, event-set
   signatures, program-level guaranteed orderings);
3. capture one execution, save it as JSON and DOT;
4. compare program-level guarantees with the single execution's
   must-orderings (the Callahan/Subhlok vs Netzer/Miller distinction).

Run:  python examples/program_exploration.py
"""

import json
import tempfile

from repro.analysis import ProgramAnalysis
from repro.core.queries import OrderingQueries
from repro.lang.interpreter import run_program
from repro.lang.parser import parse_program
from repro.model import serialize
from repro import viz

SOURCE = """
# A two-stage handoff with a data-dependent shortcut: the checker
# signals 'done' directly when it reads the flag already set, otherwise
# it waits for the worker's signal first.
shared flag = 0

proc setter {
  flag := 1          @set_flag
  V(ready)           @signal_ready
}

proc checker {
  if flag == 1 {
    V(done)          @fast_done
  } else {
    P(ready)         @slow_wait
    V(done)          @slow_done
  }
}

proc sink {
  P(done)            @consume
}
"""


def main() -> None:
    program = parse_program(SOURCE)

    # ------------------------------------------------------------------
    # 1. exhaust the schedule tree
    # ------------------------------------------------------------------
    analysis = ProgramAnalysis(program)
    print("schedule-tree summary:", analysis.summary())
    print("labels common to every run:", sorted(analysis.labels_in_all_runs()))
    print("program-level guaranteed orderings:")
    for a, b in sorted(analysis.guaranteed_orderings()):
        print(f"  {a} -> {b}")
    print()
    print("event-set signatures (distinct executions by events performed):")
    for sig, count in analysis.event_signatures().items():
        branch = "fast path" if any("V(done)" in s and "checker" in s for s in sig) else ""
        print(f"  {count:>3} run(s) with {len(sig)} steps")
    print()

    # ------------------------------------------------------------------
    # 2. one observed execution, saved as artifacts
    # ------------------------------------------------------------------
    # run the slow path: the checker reads the flag before the setter
    from repro.lang.scheduler import PriorityScheduler

    trace = run_program(program, PriorityScheduler(["checker", "setter", "sink"]))
    exe = trace.to_execution()
    print(f"observed execution (slow path): {exe}")
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as fh:
        fh.write(serialize.dumps(exe))
        print(f"execution JSON written to {fh.name}")
    with tempfile.NamedTemporaryFile("w", suffix=".dot", delete=False) as fh:
        fh.write(viz.execution_dot(exe))
        print(f"order-graph DOT written to {fh.name}")
    print()

    # ------------------------------------------------------------------
    # 3. program-level vs execution-level guarantees
    # ------------------------------------------------------------------
    q = OrderingQueries(exe)
    labels = exe.labels
    exec_must = {
        (la, lb)
        for la in labels
        for lb in labels
        if la != lb and q.mcb(labels[la], labels[lb])
    }
    prog_must = analysis.guaranteed_orderings()
    only_exec = {
        (a, b) for (a, b) in exec_must
        if a in analysis.labels_in_all_runs() and b in analysis.labels_in_all_runs()
    } - prog_must
    print(f"must-orderings of THIS execution: {len(exec_must)}")
    print(f"guaranteed over ALL executions:   {len(prog_must)}")
    print("orderings this execution pinned down that the program does not guarantee:")
    for a, b in sorted(only_exec):
        print(f"  {a} -> {b}")
    print()
    print("That asymmetry is the paper's Section 3 point: feasibility is")
    print("defined relative to an observed execution (same events, same")
    print("dependences), a strictly stronger constraint than 'any run of")
    print("the program'.")


if __name__ == "__main__":
    main()
