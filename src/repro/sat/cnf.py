"""CNF formulas over integer literals.

Literals follow the DIMACS convention: variable ``i`` (1-based) appears
positively as ``+i`` and negatively as ``-i``.  A :class:`CNF` is a
conjunction of :class:`Clause` disjunctions.  The reductions consume
*3-CNF* formulas (exactly the paper's 3CNFSAT source problem);
:meth:`CNF.to_3cnf` normalizes arbitrary clause widths by splitting
with fresh variables and padding short clauses by literal repetition
(the paper's clauses are literal multisets, so repetition is benign).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

Assignment = Dict[int, bool]


class Clause:
    """A disjunction of literals (non-empty unless explicitly empty)."""

    __slots__ = ("literals",)

    def __init__(self, literals: Iterable[int]):
        lits = tuple(int(l) for l in literals)
        if any(l == 0 for l in lits):
            raise ValueError("literal 0 is reserved (DIMACS terminator)")
        self.literals = lits

    def __iter__(self) -> Iterator[int]:
        return iter(self.literals)

    def __len__(self) -> int:
        return len(self.literals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Clause):
            return NotImplemented
        return self.literals == other.literals

    def __hash__(self) -> int:
        return hash(self.literals)

    @property
    def variables(self) -> FrozenSet[int]:
        return frozenset(abs(l) for l in self.literals)

    def is_tautology(self) -> bool:
        s = set(self.literals)
        return any(-l in s for l in s)

    def evaluate(self, assignment: Assignment) -> bool:
        return any(
            assignment.get(abs(l), False) == (l > 0) for l in self.literals
        )

    def __repr__(self) -> str:
        return "(" + " | ".join(f"x{l}" if l > 0 else f"~x{-l}" for l in self.literals) + ")"


class CNF:
    """A conjunction of clauses over variables ``1..num_vars``."""

    def __init__(self, clauses: Iterable[Iterable[int]], num_vars: Optional[int] = None):
        self.clauses: Tuple[Clause, ...] = tuple(
            c if isinstance(c, Clause) else Clause(c) for c in clauses
        )
        max_var = max((max(c.variables) for c in self.clauses if len(c)), default=0)
        if num_vars is None:
            num_vars = max_var
        if num_vars < max_var:
            raise ValueError(f"num_vars={num_vars} but clause mentions variable {max_var}")
        self.num_vars = num_vars

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CNF):
            return NotImplemented
        return self.clauses == other.clauses and self.num_vars == other.num_vars

    @property
    def variables(self) -> range:
        return range(1, self.num_vars + 1)

    def evaluate(self, assignment: Assignment) -> bool:
        return all(c.evaluate(assignment) for c in self.clauses)

    def is_3cnf(self) -> bool:
        return all(len(c) == 3 for c in self.clauses)

    # ------------------------------------------------------------------
    def to_3cnf(self) -> "CNF":
        """An equisatisfiable formula with exactly three literals per clause.

        * width 1/2 clauses are padded by repeating a literal (a clause
          is a disjunction, so repetition preserves its meaning);
        * width > 3 clauses split with fresh chaining variables
          (the standard Tseitin-style transformation).
        """
        out: List[Tuple[int, ...]] = []
        fresh = self.num_vars
        for c in self.clauses:
            lits = list(c.literals)
            if len(lits) == 0:
                # an empty clause is unsatisfiable; encode x & ~x & pad
                fresh += 1
                out.append((fresh, fresh, fresh))
                out.append((-fresh, -fresh, -fresh))
            elif len(lits) <= 3:
                while len(lits) < 3:
                    lits.append(lits[0])
                out.append(tuple(lits))
            else:
                prev = lits[0]
                rest = lits[1:]
                while len(rest) > 2:
                    fresh += 1
                    out.append((prev, rest[0], fresh))
                    prev = -fresh
                    rest = rest[1:]
                out.append((prev, rest[0], rest[1]))
        return CNF(out, num_vars=fresh)

    # ------------------------------------------------------------------
    def literal_occurrences(self) -> Dict[int, int]:
        """How often each literal appears (the reduction sizes gadgets
        by occurrence counts)."""
        counts: Dict[int, int] = {}
        for c in self.clauses:
            for l in c:
                counts[l] = counts.get(l, 0) + 1
        return counts

    def __repr__(self) -> str:
        return f"CNF({len(self.clauses)} clauses, {self.num_vars} vars)"


def parse_dimacs(text: str) -> CNF:
    """Parse a DIMACS ``cnf`` document (comments and header optional)."""
    clauses: List[List[int]] = []
    declared_vars: Optional[int] = None
    current: List[int] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ValueError(f"malformed problem line: {line!r}")
            declared_vars = int(parts[2])
            continue
        for tok in line.split():
            lit = int(tok)
            if lit == 0:
                clauses.append(current)
                current = []
            else:
                current.append(lit)
    if current:
        clauses.append(current)
    return CNF(clauses, num_vars=declared_vars)


def to_dimacs(cnf: CNF, comment: str = "") -> str:
    lines = []
    if comment:
        for row in comment.splitlines():
            lines.append(f"c {row}")
    lines.append(f"p cnf {cnf.num_vars} {len(cnf.clauses)}")
    for c in cnf.clauses:
        lines.append(" ".join(str(l) for l in c) + " 0")
    return "\n".join(lines) + "\n"
