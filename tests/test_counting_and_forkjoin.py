"""Tests for schedule counting and the fork/join random generator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.enumerate import (
    count_serial_schedules,
    enumerate_serial_schedules,
    relations_by_enumeration,
)
from repro.core.engine import FeasibilityEngine
from repro.core.relations import ALL_RELATIONS, OrderingAnalyzer
from repro.model.axioms import validate_execution
from repro.model.builder import ExecutionBuilder
from repro.workloads.generators import (
    random_forkjoin_execution,
    random_forkjoin_program,
    random_semaphore_execution,
)

from tests.strategies import small_event_executions, small_semaphore_executions


class TestCountSerialSchedules:
    def test_independent_events_factorial(self):
        b = ExecutionBuilder()
        for name in "ABC":
            b.process(name).skip()
        assert count_serial_schedules(b.build()) == 6

    def test_total_order_counts_one(self):
        b = ExecutionBuilder()
        p = b.process("p")
        p.skip(), p.skip(), p.skip()
        assert count_serial_schedules(b.build()) == 1

    def test_deadlocked_counts_zero(self):
        b = ExecutionBuilder()
        b.process("p").sem_p("never")
        assert count_serial_schedules(b.build()) == 0

    def test_semaphore_restriction(self):
        b = ExecutionBuilder()
        b.process("p1").sem_v("s")
        b.process("p2").sem_p("s")
        assert count_serial_schedules(b.build()) == 1

    def test_dependences_restrict_count(self):
        b = ExecutionBuilder()
        w = b.process("p1").write("x")
        r = b.process("p2").read("x")
        b.dependence(w, r)
        exe = b.build()
        assert count_serial_schedules(exe) == 1
        assert count_serial_schedules(exe, include_dependences=False) == 2

    @given(small_semaphore_executions())
    @settings(max_examples=25, deadline=None)
    def test_matches_enumeration_semaphores(self, exe):
        assert count_serial_schedules(exe) == len(list(enumerate_serial_schedules(exe)))

    @given(small_event_executions())
    @settings(max_examples=25, deadline=None)
    def test_matches_enumeration_events(self, exe):
        assert count_serial_schedules(exe) == len(list(enumerate_serial_schedules(exe)))

    def test_scales_past_enumeration(self):
        """Counting succeeds where enumeration would take forever: a
        12-process independent execution has 12! > 4x10^8 schedules."""
        b = ExecutionBuilder()
        for i in range(12):
            b.process(f"p{i}").skip()
        assert count_serial_schedules(b.build()) == 479_001_600


class TestForkJoinGenerator:
    @given(st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_generated_programs_complete(self, seed):
        exe = random_forkjoin_execution(seed=seed)
        assert validate_execution(exe) == []
        assert FeasibilityEngine(exe).search() is not None

    def test_produces_nested_forks(self):
        found = False
        for seed in range(30):
            exe = random_forkjoin_execution(seed=seed, depth=3)
            if len(exe.fork_children) >= 2:
                found = True
                break
        assert found

    def test_reproducible(self):
        a = random_forkjoin_program(seed=9)
        b = random_forkjoin_program(seed=9)
        assert a.processes == b.processes

    @given(st.integers(0, 300))
    @settings(max_examples=10, deadline=None)
    def test_engine_matches_enumeration_on_forkjoin(self, seed):
        """Close the coverage gap: the engine is validated against the
        definition-level ground truth on executions with real fork/join
        structure (the flat generators never produce any)."""
        exe = random_forkjoin_execution(
            seed=seed, depth=1, max_children=2, ops_per_process=1
        )
        if len(exe) > 7:  # keep the point-schedule enumeration tractable
            return
        ref = relations_by_enumeration(exe)
        ana = OrderingAnalyzer(exe)
        for name in ALL_RELATIONS:
            assert ana.relation(name) == ref[name], name
