"""Single-counting-semaphore executions from SS7 instances.

The paper remarks (end of Section 5.1) that the hardness results also
hold for executions using a *single* counting semaphore, "by a
reduction from the problem of sequencing to minimize maximum cumulative
cost" -- without giving the construction.  This module supplies one for
the fragment expressible with fork chains:

* the lone semaphore ``s`` starts at the threshold ``K``;
* a job of cost ``c > 0`` becomes a process performing ``c`` ``P(s)``
  operations (consuming resource), a job of cost ``c < 0`` becomes
  ``|c|`` ``V(s)`` operations (releasing), cost 0 becomes ``skip``;
* precedence ``i prec j`` is encoded by having ``i``'s process fork
  ``j``'s process *after* ``i``'s operations, so ``j`` cannot start
  until ``i`` completes.  Fork trees encode exactly forest-shaped
  precedence (each job at most one direct predecessor); general DAGs
  would need extra synchronization objects, which the single-semaphore
  setting forbids -- this scoping is documented in DESIGN.md.

With two independent marker events ``a`` and ``b`` added, the instance
is schedulable iff the event set is feasible iff ``a CHB b`` (any pair
of unconstrained events can be ordered either way in a feasible event
set), connecting SS7 directly to a could-have-ordering query on a
single-semaphore execution.

The correspondence between *atomic job sequences* (SS7's schedules) and
the execution's *interleaved operations* holds because every job's
operations have uniform sign: releases can always be hoisted whole and
consumptions delayed whole, so an interleaved completion exists iff an
atomic one does.  ``tests/test_single_semaphore.py`` cross-validates
this equivalence exhaustively on random instances.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.model.builder import ExecutionBuilder, ProcessBuilder
from repro.model.execution import ProgramExecution
from repro.reductions.seqmaxcost import SeqMaxCostInstance

SEMAPHORE_NAME = "s"


def single_semaphore_reduction(
    inst: SeqMaxCostInstance,
) -> Tuple[ProgramExecution, int, int]:
    """Build the execution for a forest-precedence SS7 instance.

    Returns ``(execution, a_eid, b_eid)`` with the marker events as
    described in the module docstring.
    """
    if not inst.is_forest():
        raise ValueError(
            "single-semaphore encoding supports forest precedence only "
            "(each job needs at most one direct predecessor)"
        )
    n = inst.num_jobs
    children: Dict[int, List[int]] = {j: [] for j in range(n)}
    has_pred = [False] * n
    for i, j in sorted(inst.precedence):
        children[i].append(j)
        has_pred[j] = True

    b = ExecutionBuilder()
    b.semaphore(SEMAPHORE_NAME, inst.threshold)

    def emit_job(pb: ProcessBuilder, j: int) -> None:
        c = inst.costs[j]
        if c > 0:
            for _ in range(c):
                pb.sem_p(SEMAPHORE_NAME)
        elif c < 0:
            for _ in range(-c):
                pb.sem_v(SEMAPHORE_NAME)
        else:
            pb.skip(label=f"job{j}")
        if children[j]:
            handle = pb.fork()
            for k in children[j]:
                emit_job(b.process(f"job{k}", parent=handle), k)

    for j in range(n):
        if not has_pred[j]:
            emit_job(b.process(f"job{j}"), j)

    a_eid = b.process("marker_a").skip(label="a")
    b_eid = b.process("marker_b").skip(label="b")
    return b.build(), a_eid, b_eid
