"""Shared sweep machinery for the four theorem benchmarks (TH1-TH4)."""

from __future__ import annotations

import time
from typing import Callable, Dict, List

from repro.core.engine import SearchStats
from repro.reductions.common import SatReduction
from repro.sat.dpll import solve
from repro.sat.generators import random_ksat

# the sweep: small sizes kept fast, the larger ones show the growth
GRID = [(3, 6), (3, 10), (4, 8), (4, 14), (5, 12), (5, 18)]
SEEDS = range(3)

# random instances at these ratios are usually satisfiable, but the
# co-NP-hard direction lives on UNSAT formulas: guarantee coverage by
# scanning seeds for unsatisfiable instances at a few sizes
UNSAT_SIZES = [(3, 12), (3, 16), (4, 18)]


def formula_batch():
    out = []
    for n, m in GRID:
        for seed in SEEDS:
            f = random_ksat(n, m, seed=seed)
            out.append((n, m, seed, f, solve(f) is not None))
    for n, m in UNSAT_SIZES:
        for seed in range(500):
            f = random_ksat(n, m, seed=seed)
            if solve(f) is None:
                out.append((n, m, seed, f, False))
                break
        else:  # pragma: no cover - ratios chosen to make this unreachable
            raise AssertionError(f"no UNSAT instance found at n={n}, m={m}")
    return out


def sweep(
    build: Callable[[object], SatReduction],
    query: str,
    *,
    binary: bool = False,
) -> List[Dict[str, object]]:
    """Run one ordering query per formula; record agreement + cost.

    ``query`` is ``"mhb"`` (a MHB b, expected iff UNSAT -- Theorems 1/3)
    or ``"chb"`` (b CHB a, expected iff SAT -- Theorems 2/4).
    """
    rows = []
    for n, m, seed, f, is_sat in formula_batch():
        red = build(f)
        q = red.queries(binary_semaphores=binary)
        t0 = time.perf_counter()
        if query == "mhb":
            answer = q.mhb(red.a, red.b)
            expected = not is_sat
        else:
            answer = q.chb(red.b, red.a)
            expected = is_sat
        elapsed = time.perf_counter() - t0
        rows.append(
            {
                "n": n,
                "m": m,
                "seed": seed,
                "events": len(red.execution),
                "sat": is_sat,
                "answer": answer,
                "expected": expected,
                "agree": answer == expected,
                "states": q.stats.states_visited,
                "seconds": elapsed,
                "termination": q.stats.termination,
            }
        )
    return rows


def rows_to_table(rows):
    return (
        ["n", "m", "seed", "|E|", "DPLL", "ordering answer", "agree", "states",
         "seconds", "termination"],
        [
            [
                r["n"], r["m"], r["seed"], r["events"],
                "SAT" if r["sat"] else "UNSAT",
                r["answer"], r["agree"], r["states"], f"{r['seconds']:.3f}",
                r["termination"],
            ]
            for r in rows
        ],
    )
