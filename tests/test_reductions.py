"""The paper's theorems, validated empirically.

For both constructions (Theorem 1/2 semaphores, Theorem 3/4 event
style) and over fixed plus random 3CNF formulas:

* ``a MHB b``  iff  the formula is unsatisfiable (per our own DPLL);
* ``b CHB a``  iff  satisfiable, with a replayable witness;
* the event set is always feasible (the second pass guarantees it);
* the extensions hold: Section 5.3 (ignore D -- trivially, D is empty),
  and binary semaphores for Theorem 1.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.execution import SyncStyle
from repro.reductions import (
    decide_sat_via_ordering,
    decide_unsat_via_ordering,
    event_reduction,
    semaphore_reduction,
)
from repro.sat.cnf import CNF
from repro.sat.dpll import solve
from repro.sat.generators import random_ksat

SAT_FORMULA = CNF([(1, 2, 3), (-1, 2, 3), (1, -2, 3)])
UNSAT_FORMULA = CNF(
    [(1, 1, 1), (-1, 2, 2), (-2, 3, 3), (-3, -1, -1), (1, -2, -3)]
)


class TestConstructionShape:
    def test_semaphore_process_count_matches_paper(self):
        f = random_ksat(4, 5, seed=0)
        red = semaphore_reduction(f)
        n, m = f.num_vars, len(f)
        assert len(red.execution.process_names) == 3 * n + 3 * m + 2
        # the paper declares 3n+m+1 semaphores; literals with no
        # occurrences have no operations, so the *used* count can be
        # lower but never higher
        assert len(red.execution.semaphores) <= 3 * n + m + 1
        occ = f.literal_occurrences()
        used_literals = sum(1 for lit in occ if occ[lit])
        assert len(red.execution.semaphores) == n + m + 1 + used_literals
        assert red.style is SyncStyle.SEMAPHORE

    def test_semaphores_initialized_to_zero(self):
        red = semaphore_reduction(SAT_FORMULA)
        for s in red.execution.semaphores:
            assert red.execution.sem_initial(s) == 0

    def test_no_shared_data(self):
        for red in (semaphore_reduction(SAT_FORMULA), event_reduction(SAT_FORMULA)):
            assert red.execution.dependences == frozenset()
            assert red.execution.conflicting_pairs() == []

    def test_event_construction_uses_fork_join(self):
        red = event_reduction(SAT_FORMULA)
        assert red.execution.fork_children  # one gadget per variable
        assert red.style is SyncStyle.EVENT

    def test_markers_labelled(self):
        red = semaphore_reduction(SAT_FORMULA)
        assert red.execution.by_label("a").eid == red.a
        assert red.execution.by_label("b").eid == red.b

    def test_empty_clause_rejected(self):
        with pytest.raises(ValueError):
            semaphore_reduction(CNF([[]], num_vars=1))
        with pytest.raises(ValueError):
            event_reduction(CNF([[]], num_vars=1))

    def test_size_summary(self):
        red = semaphore_reduction(SAT_FORMULA)
        s = red.size_summary()
        assert s["variables"] == 3 and s["clauses"] == 3
        assert s["events"] == len(red.execution)


class TestTheoremEquivalences:
    @pytest.mark.parametrize("build", [semaphore_reduction, event_reduction])
    def test_fixed_sat_formula(self, build):
        red = build(SAT_FORMULA)
        assert not decide_unsat_via_ordering(red)  # Theorem 1/3
        assert decide_sat_via_ordering(red)  # Theorem 2/4

    @pytest.mark.parametrize("build", [semaphore_reduction, event_reduction])
    def test_fixed_unsat_formula(self, build):
        assert solve(UNSAT_FORMULA) is None
        red = build(UNSAT_FORMULA)
        assert decide_unsat_via_ordering(red)
        assert not decide_sat_via_ordering(red)

    @pytest.mark.parametrize("build", [semaphore_reduction, event_reduction])
    def test_event_set_always_feasible(self, build):
        for f in (SAT_FORMULA, UNSAT_FORMULA):
            q = build(f).queries()
            assert q.has_feasible_execution()

    @given(
        st.integers(3, 4),
        st.integers(2, 10),
        st.integers(0, 5_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_formulas_semaphores(self, n, m, seed):
        f = random_ksat(n, m, seed=seed)
        expect_sat = solve(f) is not None
        red = semaphore_reduction(f)
        q = red.queries()
        assert q.mhb(red.a, red.b) == (not expect_sat)
        assert q.chb(red.b, red.a) == expect_sat

    @given(
        st.integers(3, 4),
        st.integers(2, 8),
        st.integers(0, 5_000),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_formulas_events(self, n, m, seed):
        f = random_ksat(n, m, seed=seed)
        expect_sat = solve(f) is not None
        red = event_reduction(f)
        q = red.queries()
        assert q.mhb(red.a, red.b) == (not expect_sat)
        assert q.chb(red.b, red.a) == expect_sat


class TestWitnessDecoding:
    def test_sat_witness_schedules_b_before_a(self):
        red = semaphore_reduction(SAT_FORMULA)
        w = red.queries().chb_witness(red.b, red.a)
        assert w is not None
        order = w.serial_order()
        assert order.index(red.b) < order.index(red.a)
        w.validate()

    def test_unsat_counterexample_absent(self):
        red = semaphore_reduction(UNSAT_FORMULA)
        assert red.queries().chb_witness(red.b, red.a) is None


class TestExtensions:
    def test_section_5_3_ignoring_dependences(self):
        """The constructed programs have empty D, so the equivalences
        hold verbatim when D is ignored."""
        for build in (semaphore_reduction, event_reduction):
            red = build(UNSAT_FORMULA)
            q = red.queries(include_dependences=False)
            assert q.mhb(red.a, red.b)

    def test_binary_semaphores_remark(self):
        """End of Section 5.1: the proofs hold for binary semaphores.

        Binary mode disables the V-hoisting reduction (the clamp can
        swallow an early V), so the searches branch far more; a small
        UNSAT formula keeps the exhaustive side tractable here while
        ``bench_binary_semaphore.py`` pushes the sizes.
        """
        small_unsat = CNF([(1, 1, 1), (-1, -1, -1)])
        for f, expect_sat in ((SAT_FORMULA, True), (small_unsat, False)):
            red = semaphore_reduction(f)
            q = red.queries(binary_semaphores=True, max_states=2_000_000)
            assert q.has_feasible_execution()
            assert q.mhb(red.a, red.b) == (not expect_sat)
            assert q.chb(red.b, red.a) == expect_sat

    def test_other_relations_track_satisfiability(self):
        """Theorem 1's "analogous" claims, observed on the canonical
        construction: overlap of a and b is possible iff satisfiable,
        so MOW(a,b) decides unsatisfiability too."""
        for f, expect_sat in ((SAT_FORMULA, True), (UNSAT_FORMULA, False)):
            red = semaphore_reduction(f)
            q = red.queries()
            assert q.ccw(red.a, red.b) == expect_sat
            assert q.mow(red.a, red.b) == (not expect_sat)
