"""Race detectors: apparent (vector clock) and feasible (exact CCW)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.approx.vectorclock import VectorClockAnalysis
from repro.core.queries import OrderingQueries
from repro.core.witness import Witness
from repro.model.execution import ProgramExecution


@dataclass(frozen=True)
class Race:
    """A pair of conflicting events that may run concurrently.

    ``witness`` (feasible races only) is a schedule in which the two
    events' intervals overlap; ``variables`` lists the shared locations
    both sides touch conflictingly.
    """

    a: int
    b: int
    variables: FrozenSet[str]
    kind: str  # "apparent" or "feasible"
    witness: Optional[Witness] = None

    def describe(self, exe: ProgramExecution) -> str:
        ea, eb = exe.event(self.a), exe.event(self.b)
        vs = ",".join(sorted(self.variables))
        return f"[{self.kind}] {ea.describe()} <-> {eb.describe()} on {{{vs}}}"


@dataclass
class RaceReport:
    """The result of one detection run."""

    execution: ProgramExecution
    races: List[Race]
    kind: str
    conflicting_pairs_examined: int

    def pairs(self) -> List[Tuple[int, int]]:
        return [(r.a, r.b) for r in self.races]

    def summary(self) -> str:
        return (
            f"{self.kind} races: {len(self.races)} / "
            f"{self.conflicting_pairs_examined} conflicting pairs"
        )

    def pretty(self) -> str:
        lines = [self.summary()]
        for r in self.races:
            lines.append("  " + r.describe(self.execution))
        return "\n".join(lines)


def _conflict_variables(exe: ProgramExecution, a: int, b: int) -> FrozenSet[str]:
    ea, eb = exe.event(a), exe.event(b)
    out = set()
    for x in ea.accesses:
        for y in eb.accesses:
            if x.conflicts_with(y):
                out.add(x.variable)
    return frozenset(out)


class RaceDetector:
    """Detects apparent and feasible races of one execution."""

    def __init__(
        self,
        exe: ProgramExecution,
        *,
        max_states: Optional[int] = None,
    ) -> None:
        self.exe = exe
        self.max_states = max_states

    # ------------------------------------------------------------------
    def apparent_races(self, schedule: Optional[Sequence[int]] = None) -> RaceReport:
        """Conflicting pairs unordered by the observed vector clocks.

        Fast (polynomial) but tied to the observed pairing: it can both
        miss races (a sync edge in this run masked an overlap another
        run allows) and, relative to feasibility, report pairs that
        shared-data dependences actually order.
        """
        vc = VectorClockAnalysis(self.exe, schedule)
        races: List[Race] = []
        pairs = self.exe.conflicting_pairs()
        for a, b in pairs:
            if vc.concurrent(a, b):
                races.append(Race(a, b, _conflict_variables(self.exe, a, b), "apparent"))
        return RaceReport(self.exe, races, "apparent", len(pairs))

    # ------------------------------------------------------------------
    def feasible_races(self, *, drop_racing_dependences: bool = True) -> RaceReport:
        """Conflicting pairs with ``a CCW b`` -- the paper's notion.

        ``drop_racing_dependences``: a conflicting pair is itself a
        shared-data dependence of the observed execution, and condition
        F3 would freeze its order, masking the very race under test.
        Following the companion race-detection paper [10], the
        dependence between the two *tested* events is dropped while all
        other dependences are kept, so the query asks "could these two
        have overlapped while the rest of the data flow stayed intact".
        Set it False to keep strict F3 semantics.
        """
        races: List[Race] = []
        pairs = self.exe.conflicting_pairs()
        for a, b in pairs:
            if drop_racing_dependences:
                deps = {
                    (x, y)
                    for (x, y) in self.exe.dependences
                    if {x, y} != {a, b}
                }
                exe = self.exe.with_dependences(deps)
            else:
                exe = self.exe
            queries = OrderingQueries(exe, max_states=self.max_states)
            w = queries.ccw_witness(a, b)
            if w is not None:
                races.append(
                    Race(a, b, _conflict_variables(self.exe, a, b), "feasible", witness=w)
                )
        return RaceReport(self.exe, races, "feasible", len(pairs))
