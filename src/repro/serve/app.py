"""The ``repro serve`` HTTP daemon (lifecycle + request handling).

Wiring: HTTP handler threads (stdlib ``ThreadingHTTPServer``) pass
through the :class:`~repro.serve.admission.AdmissionQueue`, resolve the
execution against the persistent
:class:`~repro.serve.store.WitnessStore`, clamp the requested budget
(:func:`repro.budget.clamp_request`), and evaluate on the
crash-isolated :class:`~repro.supervise.pool.QueryWorkerPool` -- so a
segfaulting, OOM-killed or hanging evaluation costs one worker process
and one retried request, never the daemon.  Newly found witnesses are
persisted back to the store, which is how a repeat query on a stored
execution is answered by the cheap ``witness`` tier without the engine
running at all.

Endpoints::

    GET  /healthz         liveness: 200 while the process serves at all
    GET  /readyz          readiness: 200 only in the "serving" state;
                          503 while starting and while draining
    GET  /status          JSON: state, uptime, admission/pool/store stats
    GET  /metrics         the same, as Prometheus text (plus the
                          per-endpoint x kind x phase latency histograms)
    GET  /executions      stored execution fingerprints
    POST /executions      store an execution document -> fingerprint
    POST /query           evaluate one relation query (see QueryDaemon)
    GET  /debug/requests  bounded ring of recent requests (most recent
                          first: id, endpoint, kind, status, phases)
    GET  /debug/slow      the slow-query log (>= --slow-threshold)

Request IDs: every request gets one at ingress -- a well-formed
``X-Repro-Request-Id`` header (``[A-Za-z0-9._-]{1,64}``) is honored,
anything else replaced -- and it is echoed in the response header of
*every* endpoint and in the JSON body of the work endpoints, errors
included, so a client log line and a daemon trace line always meet.
With ``--trace FILE`` the work endpoints (``POST /executions``,
``POST /query``, ``GET /executions``) emit ``serve.*`` spans keyed by
that id: one ``serve.request`` plus per-phase spans
(``admission.wait``/``store.read``/``dispatch``/``worker.eval``/
``store.write``/``response``), with ``serve.worker.eval`` and the
planner's ``query`` spans recorded *inside* the worker process and
shipped home on the result message, scan-pool style.  Introspection
endpoints are deliberately not traced: they are unbounded-cardinality
noise, and excluding them is what lets ``repro trace serve-summary``
counts equal the ``/status`` ``"http"`` totals exactly.  The whole
layer is a pure observer -- tracing on or off, response bodies are
byte-identical minus the request-id echo -- and the sink is wrapped in
:class:`~repro.obs.trace.FailsafeSink`, so a full buffer or a failing
disk drops (counted) records, never requests.

Degradation contract: every degraded answer is an explicit ``UNKNOWN``
with the resource that ran out (``deadline``, ``states``, ``crash``,
``memory``, ``cpu``, ``shutdown``) and the planner's per-tier tallies
-- the daemon may decline to answer, it never guesses.

Disk pressure gets its own state: ``degraded_after`` consecutive
failed flush passes (ENOSPC, read-only remount) flip the daemon into
**degraded read-only mode**.  Reads and queries over already-stored
executions keep working from memory + the existing store; anything
that must write -- ``POST /executions``, a ``/query`` with an inline
execution document -- answers ``507 Insufficient Storage`` instead of
acknowledging data it cannot make durable.  ``/readyz`` stays ``200``
but reports ``degraded`` (a read-only replica is still routable), a
background probe re-tries a durable write every ``probe_interval``
seconds, and the moment the disk recovers the dirty entries are
flushed and full service resumes -- no restart, no operator action.

Shutdown (SIGTERM and SIGINT alike, wired by the CLI): flip readiness
to 503, stop admitting (new queries get 503), let in-flight requests
finish, drain the worker pool, flush the store, then stop the
listener.  A second signal skips the grace and tears down immediately.
"""

from __future__ import annotations

import json
import logging
import re
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from http.server import ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional

from repro import faults
from repro.budget import clamp_request
from repro.memmodel import resolve_memory_model
from repro.model import serialize
from repro.obs.metrics import MetricsRegistry
from repro.obs.server import QuietHandler
from repro.obs.trace import NULL_SINK, FailsafeSink, TraceSink
from repro.serve.admission import AdmissionQueue, Draining, Overloaded
from repro.serve.store import WitnessStore
from repro.supervise.pool import QUERY_RELATIONS, QueryWorkerPool
from repro.supervise.retry import RetryPolicy
from repro.supervise.rlimits import ResourceLimits

log = logging.getLogger("repro.serve")

#: relations that need both event ids (everything except feasibility)
_PAIR_RELATIONS = QUERY_RELATIONS - {"feasible"}

#: largest accepted request body (a trace document), in bytes
MAX_BODY_BYTES = 64 << 20

#: an acceptable client-supplied ``X-Repro-Request-Id`` -- anything
#: else (too long, control characters, header-injection attempts) is
#: replaced with a generated id, never rejected
_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


class _BadRequest(Exception):
    """Client error; message is served verbatim in the 400 body."""


def _require_model_match(doc: Dict[str, Any], exe: Any) -> None:
    """Enforce an explicit ``memory_model`` claim in a request.

    A client that says which model it believes it is talking about must
    be right: answering a TSO question from an SC execution (or vice
    versa) would be silently wrong, so a mismatch is a hard 400, never
    a coercion.  Requests that stay silent keep the execution's own
    model.
    """
    requested = doc.get("memory_model")
    if requested is None:
        return
    try:
        model = resolve_memory_model(str(requested))
    except ValueError as exc:
        raise _BadRequest(str(exc))
    if model.name != exe.memory_model:
        raise _BadRequest(
            f"memory model mismatch: request says {model.name!r} but the "
            f"execution was recorded under {exe.memory_model!r}"
        )


class _TooLarge(Exception):
    """Request body over :data:`MAX_BODY_BYTES`; served as 413."""


class _ReadOnly(Exception):
    """A write reached a degraded (read-only) daemon; served as 507."""


class _RequestObs:
    """One tracked request's observation state: its id, per-phase wall
    time, and the spans the worker shipped home with its result.
    :meth:`QueryDaemon.finish_request` turns it into trace spans,
    histogram observations and a debug-ring entry.  A pure observer:
    :meth:`phase` only stamps clocks, and every emission downstream
    happens behind the :class:`~repro.obs.trace.FailsafeSink`."""

    __slots__ = ("endpoint", "rid", "t0", "kind", "phases", "spans")

    def __init__(self, endpoint: str, rid: str) -> None:
        self.endpoint = endpoint
        self.rid = rid
        self.t0 = time.monotonic()
        self.kind: Optional[str] = None  # query relation, once validated
        self.phases: Dict[str, List[float]] = {}  # name -> [t_first, total]
        self.spans: List[Dict[str, Any]] = []  # worker-shipped spans

    @contextmanager
    def phase(self, name: str):
        """Time one pass through a request phase; repeated passes (two
        store reads, say) accumulate into one span."""
        t0 = time.monotonic()
        try:
            yield
        finally:
            tally = self.phases.get(name)
            if tally is None:
                self.phases[name] = [t0, time.monotonic() - t0]
            else:
                tally[1] += time.monotonic() - t0


class _Handler(QuietHandler):
    server_version = "repro-serve"
    #: socket timeout: a client that trickles its request (or stops
    #: reading the response) stalls one handler thread for at most this
    #: long, never a worker or the accept loop; per-daemon value set in
    #: :meth:`setup` from ``--client-timeout``
    timeout = 10.0

    def setup(self) -> None:
        # must happen before the stdlib applies ``self.timeout`` to the
        # connection socket
        self.timeout = self.server.app.client_timeout
        super().setup()

    def _reply(
        self,
        code: int,
        body: str,
        content_type: str = "text/plain; charset=utf-8",
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        # the request-id echo: on every response, errors included
        rid = getattr(self, "_rid", None)
        if rid is not None:
            headers = dict(headers or {})
            headers.setdefault("X-Repro-Request-Id", rid)
        super()._reply(code, body, content_type, headers)

    def _begin(self) -> str:
        """Resolve this request's id: honor a well-formed client
        ``X-Repro-Request-Id`` (lets callers correlate their retries
        and logs with daemon traces), mint one otherwise."""
        claimed = self.headers.get("X-Repro-Request-Id") or ""
        self._rid = (
            claimed
            if _REQUEST_ID_RE.match(claimed)
            else uuid.uuid4().hex[:16]
        )
        return self._rid

    # -- GET -----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
        daemon: "QueryDaemon" = self.server.app
        rid = self._begin()
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self._reply(200, "ok\n")
        elif path == "/readyz":
            if daemon.state == "serving":
                self._reply(200, "ready\n")
            elif daemon.state == "degraded":
                # a read-only replica is still routable for queries;
                # the body says writes will bounce with 507
                self._reply(200, "degraded (read-only)\n")
            else:
                self._reply(503, f"not ready ({daemon.state})\n")
        elif path == "/status":
            self._reply_json(200, daemon.status())
        elif path == "/metrics":
            self._reply(
                200,
                daemon.render_metrics(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif path == "/debug/requests":
            self._reply_json(200, daemon.debug_requests())
        elif path == "/debug/slow":
            self._reply_json(200, daemon.debug_slow())
        elif path == "/executions":
            obs = daemon.begin_request("GET /executions", rid)
            with obs.phase("store.read"):
                doc: Dict[str, Any] = {
                    "executions": daemon.store.fingerprints(),
                    "store": daemon.store.stats(),
                }
            doc["request_id"] = rid
            with obs.phase("response"):
                self._reply_json(200, doc)
            daemon.finish_request(obs, 200)
        else:
            self._reply(404, "not found\n")

    # -- POST ----------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 (stdlib handler API)
        daemon: "QueryDaemon" = self.server.app
        rid = self._begin()
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path not in ("/executions", "/query"):
            self._reply(404, "not found\n")
            return
        obs = daemon.begin_request(f"POST {path}", rid)
        headers: Optional[Dict[str, str]] = None
        close = False
        try:
            doc = self._read_json()
            if path == "/executions":
                code, body = 200, daemon.handle_put_execution(doc, obs=obs)
            else:
                code, body, headers = daemon.handle_query(doc, obs=obs)
        except _BadRequest as exc:
            code, body = 400, {"error": str(exc)}
        except _TooLarge as exc:
            # 413, not 400: the request was well-formed, just too big --
            # clients and proxies treat the codes differently (a 413 is
            # retryable after shrinking, a 400 is a bug).  The unread
            # body is still on the socket, so close the connection
            # rather than try to parse it as a next request.
            code, body = 413, {"error": str(exc)}
            headers = {"Connection": "close"}
            close = True
        except _ReadOnly as exc:
            code, body = 507, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - the daemon must survive
            daemon.count_error()
            code, body = 500, {"error": f"internal error: {exc!r}"}
        body["request_id"] = rid
        with obs.phase("response"):
            self._reply_json(code, body, headers)
        if close:
            self.close_connection = True
        daemon.finish_request(obs, code)

    def _read_json(self) -> Dict[str, Any]:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise _BadRequest("bad Content-Length")
        if length <= 0:
            raise _BadRequest("missing request body")
        if length > MAX_BODY_BYTES:
            raise _TooLarge(
                f"request body is {length} bytes; this server accepts "
                f"at most {MAX_BODY_BYTES}"
            )
        try:
            data = self.rfile.read(length)
        except OSError:  # slow client hit the socket timeout
            self.server.app.count_disconnect(
                getattr(self, "_rid", "-"),
                "request body not received in time",
            )
            raise _BadRequest("request body not received in time")
        if len(data) < length:
            self.server.app.count_disconnect(
                getattr(self, "_rid", "-"), "client disconnected mid-request"
            )
            raise _BadRequest("client disconnected mid-request")
        try:
            doc = json.loads(data)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _BadRequest(f"request body is not JSON: {exc}")
        if not isinstance(doc, dict):
            raise _BadRequest("request body must be a JSON object")
        return doc


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    app: "QueryDaemon"


class QueryDaemon:
    """A long-lived query-answering service over one witness store.

    A ``POST /query`` body names an execution (``"fingerprint"`` of a
    stored one, or an inline ``"execution"`` document, which is stored
    first) plus ``"relation"`` (one of mhb/chb/mcb/ccb/mow/cow/mcw/ccw/
    feasible/race), event ids ``"a"``/``"b"`` for pair relations, and
    an optional requested budget (``"max_states"``, ``"timeout"``)
    which is clamped to the server's caps.  Both ``POST /executions``
    and ``POST /query`` accept an optional ``"memory_model"`` claim;
    naming a model different from the execution's recorded one is a
    hard 400 (the daemon never silently reinterprets a document).
    """

    def __init__(
        self,
        store: WitnessStore,
        *,
        port: int = 0,
        host: str = "127.0.0.1",
        workers: int = 2,
        queue_limit: int = 8,
        default_timeout: Optional[float] = 30.0,
        max_timeout: Optional[float] = 120.0,
        max_states: Optional[int] = None,
        limits: Optional[ResourceLimits] = None,
        retry: Optional[RetryPolicy] = None,
        plan: Optional[Any] = None,
        faults: Optional[Dict[str, Dict[str, Any]]] = None,
        drain_grace: float = 10.0,
        degraded_after: int = 3,
        probe_interval: float = 2.0,
        retry_after_cap: float = 300.0,
        tracer: Optional[TraceSink] = None,
        slow_threshold: float = 1.0,
        client_timeout: float = 10.0,
        recent_capacity: int = 256,
        slow_capacity: int = 64,
    ) -> None:
        if degraded_after < 1:
            raise ValueError("degraded_after must be >= 1")
        self.store = store
        self.default_timeout = default_timeout
        self.max_timeout = max_timeout
        self.max_states = max_states
        self.drain_grace = drain_grace
        self.degraded_after = degraded_after
        self.probe_interval = probe_interval
        self.slow_threshold = slow_threshold
        self.client_timeout = client_timeout
        self.state = "starting"
        self._t0 = time.monotonic()
        self._state_lock = threading.Lock()
        self._requests = {"queries": 0, "unknown": 0, "errors": 0}
        self._degraded_since: Optional[float] = None
        self._recoveries = 0
        self._rejected_read_only = 0
        self._probe_thread: Optional[threading.Thread] = None
        # tracing must never fail (or cross-thread-corrupt) a request:
        # whatever sink the caller hands over is wrapped so concurrent
        # handler threads serialize on one lock and any sink failure
        # becomes a counted drop.  The daemon owns the wrapper from
        # here: close() closes it, flushing the drop accounting.
        if tracer is None:
            tracer = NULL_SINK
        if tracer.enabled and not isinstance(tracer, FailsafeSink):
            tracer = FailsafeSink(tracer)
        self.tracer = tracer
        self._traced = bool(tracer.enabled)
        #: persistent request-latency histograms (endpoint x kind x
        #: phase); counters stay status-derived in render_metrics()
        self.metrics = MetricsRegistry()
        self._http: Dict[str, int] = {}  # endpoint -> completed requests
        self._recent: deque = deque(maxlen=max(1, recent_capacity))
        self._slow: deque = deque(maxlen=max(1, slow_capacity))
        self._disconnects = 0
        self.admission = AdmissionQueue(
            queue_limit, workers=workers, retry_after_cap=retry_after_cap
        )
        self.pool = QueryWorkerPool(
            workers,
            limits=limits,
            retry=retry,
            plan=plan,
            faults=faults,
            trace=self._traced,
        )
        # bind eagerly: a taken port must fail *now*, before the CLI
        # reports the daemon as up
        try:
            self._httpd = _Server((host, port), _Handler)
        except OSError:
            self.pool.close(drain=False)
            raise
        self._httpd.app = self
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "QueryDaemon":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        self.state = "serving"
        return self

    def url(self, path: str = "/status") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def drain(self, *, grace: Optional[float] = None) -> None:
        """Finish in-flight work, refuse new, make everything durable."""
        grace = self.drain_grace if grace is None else grace
        with self._state_lock:
            if self.state in ("draining", "stopped"):
                return
            self.state = "draining"  # /readyz flips to 503 immediately
        self.admission.begin_drain()  # new queries now get 503
        self.admission.wait_idle(grace)  # in-flight handlers finish
        self.pool.close(drain=True, timeout=grace)
        self.store.flush()

    def close(self, *, drain: bool = True) -> None:
        if drain:
            self.drain()
        else:  # second signal: now
            with self._state_lock:
                self.state = "draining"
            self.admission.begin_drain()
            self.pool.close(drain=False, timeout=1.0)
            self.store.flush()
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()
        if self._traced:
            # flush the sink once (writes the trace.drops accounting
            # record); late stragglers after this are not recorded
            self._traced = False
            self.tracer.close()
        self.state = "stopped"

    def __enter__(self) -> "QueryDaemon":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- degraded read-only mode -----------------------------------------
    def _note_storage_failure(self) -> None:
        """Re-evaluate degraded state after a failed durable write.

        The store counts consecutive failed flush *passes*; once they
        reach ``degraded_after`` the daemon flips to read-only and a
        background probe takes over retrying -- handler threads stop
        paying the price of a doomed flush on every request.
        """
        if self.store.consecutive_flush_failures < self.degraded_after:
            return
        with self._state_lock:
            if self.state != "serving":
                return  # starting / draining / already degraded
            self.state = "degraded"
            self._degraded_since = time.monotonic()
            probe = self._probe_thread
            if probe is None or not probe.is_alive():
                self._probe_thread = threading.Thread(
                    target=self._probe_loop,
                    name="repro-serve-probe",
                    daemon=True,
                )
                self._probe_thread.start()
        log.warning(
            "daemon degraded to read-only: %d consecutive flush "
            "pass(es) failed; queries keep serving from memory + store, "
            "writes answer 507, probing the disk every %.1fs",
            self.store.consecutive_flush_failures, self.probe_interval,
        )

    def _probe_loop(self) -> None:
        """Background disk probe: restore full service on recovery."""
        while True:
            time.sleep(self.probe_interval)
            if self.state != "degraded":
                return  # drained / stopped / already recovered
            if not self.store.probe():
                continue
            # the disk takes durable writes again: flush the backlog;
            # recovery requires the whole pass to have succeeded
            failures_before = self.store.flush_failures
            self.store.flush()
            if self.store.flush_failures != failures_before:
                continue
            self.store.consecutive_flush_failures = 0
            with self._state_lock:
                if self.state != "degraded":
                    return
                self.state = "serving"
                self._degraded_since = None
                self._recoveries += 1
            log.warning(
                "disk recovered: store flushed, resuming full service"
            )
            return

    def _flush_store(self) -> None:
        """Flush after a mutation, then re-evaluate degraded state.
        While degraded the probe loop owns retrying -- handler threads
        skip the flush entirely and serve from memory."""
        if self.state == "degraded":
            return
        self.store.flush()
        self._note_storage_failure()

    # -- request observation (handler threads) ---------------------------
    def begin_request(self, endpoint: str, rid: str) -> _RequestObs:
        """Open one tracked request's observation context."""
        return _RequestObs(endpoint, rid)

    def finish_request(self, obs: _RequestObs, status: int) -> None:
        """Close out a tracked request: histograms, the recent/slow
        debug rings, the per-endpoint ``/status`` counter, and -- when
        tracing -- the ``serve.*`` spans, all keyed by the request id.
        Runs after the response bytes left, so ``serve.request`` covers
        the client's whole wait."""
        elapsed = time.monotonic() - obs.t0
        endpoint, kind = obs.endpoint, (obs.kind or "-")
        phase_totals = {
            name: tally[1] for name, tally in obs.phases.items()
        }
        for span in obs.spans:  # the worker's evaluation bound
            if span.get("kind") == "serve.worker.eval":
                phase_totals["worker.eval"] = (
                    phase_totals.get("worker.eval", 0.0) + span["elapsed"]
                )
        labels = {"endpoint": endpoint, "kind": kind}
        entry = {
            "request_id": obs.rid,
            "endpoint": endpoint,
            "kind": kind,
            "status": status,
            "elapsed_seconds": elapsed,
            "phases": phase_totals,
        }
        with self._state_lock:
            self._http[endpoint] = self._http.get(endpoint, 0) + 1
            self.metrics.histogram(
                "repro_serve_request_seconds",
                "End-to-end request latency, by endpoint and query kind",
                labels=labels,
            ).observe(elapsed)
            for name, total in phase_totals.items():
                self.metrics.histogram(
                    "repro_serve_phase_seconds",
                    "Request time by phase (admission.wait/store.read/"
                    "dispatch/worker.eval/store.write/response)",
                    labels={**labels, "phase": name},
                ).observe(total)
            self._recent.append(entry)
            slow = elapsed >= self.slow_threshold
            if slow:
                self._slow.append(entry)
        if slow:
            log.warning(
                "slow request %s: %s kind=%s status=%d took %.3fs "
                "(threshold %.3fs)",
                obs.rid, endpoint, kind, status, elapsed,
                self.slow_threshold,
            )
        if self._traced:
            tr = self.tracer
            for span in obs.spans:
                span.setdefault("request_id", obs.rid)
                tr.emit(span)
            for name, tally in obs.phases.items():
                tr.emit(
                    {
                        "kind": f"serve.{name}",
                        "t": tally[0],
                        "request_id": obs.rid,
                        "elapsed": tally[1],
                    }
                )
            record = {
                "kind": "serve.request",
                "t": obs.t0,
                "request_id": obs.rid,
                "endpoint": endpoint,
                "status": status,
                "elapsed": elapsed,
            }
            if obs.kind is not None:
                record["query_kind"] = obs.kind
            tr.emit(record)

    def count_disconnect(self, rid: str, reason: str) -> None:
        """The slow/vanishing-client path, no longer silent: one metric
        tick and one log line carrying the request id."""
        with self._state_lock:
            self._disconnects += 1
        log.warning("client disconnect on request %s: %s", rid, reason)

    def debug_requests(self) -> Dict[str, Any]:
        with self._state_lock:
            entries = list(self._recent)
        entries.reverse()  # most recent first
        return {"capacity": self._recent.maxlen, "requests": entries}

    def debug_slow(self) -> Dict[str, Any]:
        with self._state_lock:
            entries = list(self._slow)
        entries.reverse()
        return {
            "slow_threshold_seconds": self.slow_threshold,
            "capacity": self._slow.maxlen,
            "requests": entries,
        }

    # -- request handling (handler threads) ------------------------------
    def count_error(self) -> None:
        with self._state_lock:
            self._requests["errors"] += 1

    def handle_put_execution(
        self, doc: Dict[str, Any], obs: Optional[_RequestObs] = None
    ) -> Dict[str, Any]:
        if obs is None:  # direct (library/test) callers: observe a stub
            obs = _RequestObs("POST /executions", "-")
        if self.state == "degraded":
            with self._state_lock:
                self._rejected_read_only += 1
            raise _ReadOnly(
                "daemon is in degraded read-only mode (disk not taking "
                "durable writes); execution not stored -- retry later"
            )
        exe_doc = doc.get("execution", doc)  # bare documents welcome
        try:
            exe = serialize.execution_from_dict(exe_doc)
        except (ValueError, KeyError, TypeError) as exc:
            raise _BadRequest(f"bad execution document: {exc}")
        _require_model_match(doc, exe)
        with obs.phase("store.write"):
            try:
                fp = self.store.put_execution(exe)
            except OSError as exc:
                self._note_storage_failure()
                raise _ReadOnly(
                    f"could not store the execution durably: {exc}"
                )
            self._flush_store()
        return {
            "fingerprint": fp,
            "memory_model": exe.memory_model,
            "witnesses": len(self.store.points_for(fp)),
        }

    def handle_query(
        self, doc: Dict[str, Any], obs: Optional[_RequestObs] = None
    ):
        """Returns ``(http_code, json_body, extra_headers)``."""
        if obs is None:  # direct (library/test) callers: observe a stub
            obs = _RequestObs("POST /query", "-")
        if self.state not in ("serving", "degraded"):
            return 503, {"error": f"daemon is {self.state}"}, None
        try:
            with obs.phase("admission.wait"):
                self.admission.try_enter()
        except Overloaded as exc:
            retry_after = max(1, int(round(exc.retry_after)))
            return (
                429,
                {
                    "error": "at capacity",
                    "retry_after_seconds": retry_after,
                    "admission": self.admission.stats(),
                },
                {"Retry-After": str(retry_after)},
            )
        except Draining:
            return 503, {"error": "daemon is draining"}, None
        entered_at = time.monotonic()
        try:
            return self._run_query(doc, obs)
        finally:
            self.admission.release(time.monotonic() - entered_at)

    def _run_query(self, doc: Dict[str, Any], obs: _RequestObs):
        faults.fire("serve.query")
        # -- resolve the execution ------------------------------------
        fp = doc.get("fingerprint")
        if fp is None:
            exe_doc = doc.get("execution")
            if exe_doc is None:
                raise _BadRequest(
                    "name an execution: 'fingerprint' of a stored one, or "
                    "an inline 'execution' document"
                )
            if self.state == "degraded":
                # an inline execution must be stored before the pool can
                # evaluate it; a degraded daemon cannot make it durable
                with self._state_lock:
                    self._rejected_read_only += 1
                raise _ReadOnly(
                    "daemon is in degraded read-only mode; query a stored "
                    "'fingerprint' instead of an inline execution"
                )
            try:
                exe = serialize.execution_from_dict(exe_doc)
            except (ValueError, KeyError, TypeError) as exc:
                raise _BadRequest(f"bad execution document: {exc}")
            with obs.phase("store.write"):
                try:
                    fp = self.store.put_execution(exe)
                except OSError as exc:
                    self._note_storage_failure()
                    raise _ReadOnly(
                        f"could not store the execution durably: {exc}"
                    )
        elif fp not in self.store:
            return 404, {"error": f"no stored execution {fp}"}, None
        with obs.phase("store.read"):
            exe = self.store.execution(fp)
        _require_model_match(doc, exe)
        # -- validate the relation ------------------------------------
        relation = str(doc.get("relation", "race")).lower()
        if relation not in QUERY_RELATIONS:
            raise _BadRequest(
                f"unknown relation {relation!r} "
                f"(one of {', '.join(sorted(QUERY_RELATIONS))})"
            )
        obs.kind = relation
        a = b = None
        if relation in _PAIR_RELATIONS:
            try:
                a, b = int(doc["a"]), int(doc["b"])
            except (KeyError, TypeError, ValueError):
                raise _BadRequest(
                    f"relation {relation!r} needs integer event ids 'a' and 'b'"
                )
            known = set(exe.eids)
            if a not in known or b not in known:
                raise _BadRequest(
                    f"event ids must be within this execution's "
                    f"0..{len(exe.events) - 1}"
                )
        # -- clamp the requested budget to the server's caps ----------
        req_states = doc.get("max_states")
        req_timeout = doc.get("timeout")
        try:
            req_states = None if req_states is None else int(req_states)
            req_timeout = None if req_timeout is None else float(req_timeout)
        except (TypeError, ValueError):
            raise _BadRequest("'max_states'/'timeout' must be numbers")
        max_states, timeout = clamp_request(
            req_states,
            req_timeout,
            states_cap=self.max_states,
            timeout_cap=self.max_timeout,
            default_timeout=self.default_timeout,
        )
        # -- evaluate on the crash-isolated pool ----------------------
        with obs.phase("store.read"):
            exe_doc_stored = self.store.execution_doc(fp)
            seed_witnesses = self.store.points_for(fp)
        request = {
            "fingerprint": fp,
            "execution": exe_doc_stored,
            "relation": relation,
            "a": a,
            "b": b,
            "drop_racing": bool(doc.get("drop_racing", True)),
            "max_states": max_states,
            "timeout": timeout,
            "witnesses": seed_witnesses,
        }
        with obs.phase("dispatch"):
            tid = self.pool.submit(request)
            wait = None
            if timeout is not None:
                # budget + crash retries + wall grace, with margin: the
                # pool always finalizes (UNKNOWN at worst) well inside
                retries = self.pool.retry.max_retries
                wait = (timeout + self.pool.wall_grace) * (1 + retries) + 15.0
            outcome = self.pool.result(tid, timeout=wait)
        # the worker's spans (already uid-tagged by the pool) ride the
        # outcome; pull them off before the response body is built
        worker_spans = outcome.pop("spans", None)
        if worker_spans:
            obs.spans.extend(worker_spans)
        # -- persist what the query discovered ------------------------
        with obs.phase("store.write"):
            persisted = self.store.add_points(
                fp, outcome.get("witnesses_found")
            )
            if persisted:
                self._flush_store()
        with self._state_lock:
            self._requests["queries"] += 1
            if outcome.get("verdict") in ("UNKNOWN", "unknown"):
                self._requests["unknown"] += 1
        body = {
            "fingerprint": fp,
            "memory_model": exe.memory_model,
            "relation": relation,
            "a": a,
            "b": b,
            "verdict": outcome.get("verdict"),
            "decided_by": outcome.get("decided_by"),
            "resource": outcome.get("resource"),
            "witness": outcome.get("witness"),
            "classification": outcome.get("classification"),
            "planner": outcome.get("planner"),
            "budget": {"max_states": max_states, "timeout": timeout},
            "witnesses_persisted": persisted,
        }
        return 200, body, None

    # -- introspection ---------------------------------------------------
    def status(self) -> Dict[str, Any]:
        with self._state_lock:
            requests = dict(self._requests)
            http = dict(self._http)
            disconnects = self._disconnects
            degraded_since = self._degraded_since
            degraded = {
                "seconds": (
                    time.monotonic() - degraded_since
                    if degraded_since is not None
                    else 0.0
                ),
                "recoveries": self._recoveries,
                "rejected_read_only": self._rejected_read_only,
            }
        return {
            "service": "repro-serve",
            "state": self.state,
            "uptime_seconds": time.monotonic() - self._t0,
            "requests": requests,
            # completed requests per tracked endpoint -- the exact
            # totals `repro trace serve-summary` reports for a traced
            # run (introspection endpoints are in neither tally)
            "http": http,
            "observability": {
                "client_disconnects": disconnects,
                "trace_enabled": self._traced,
                "trace_dropped": getattr(
                    self.tracer, "total_dropped", lambda: 0
                )(),
                "slow_threshold_seconds": self.slow_threshold,
                "client_timeout_seconds": self.client_timeout,
            },
            "degraded": degraded,
            "admission": self.admission.stats(),
            "pool": self.pool.stats(),
            "store": self.store.stats(),
        }

    def render_metrics(self) -> str:
        doc = self.status()
        registry = MetricsRegistry()
        registry.gauge("repro_serve_up", "1 while the daemon serves").set(1)
        registry.gauge(
            "repro_serve_ready", "1 while accepting new queries"
        ).set(1 if doc["state"] == "serving" else 0)
        registry.gauge(
            "repro_serve_degraded", "1 while in degraded read-only mode"
        ).set(1 if doc["state"] == "degraded" else 0)
        deg = doc["degraded"]
        registry.counter(
            "repro_serve_recoveries_total",
            "Degraded-to-serving recoveries",
        ).inc(deg["recoveries"])
        registry.counter(
            "repro_serve_rejected_read_only_total",
            "Writes refused with 507 while degraded",
        ).inc(deg["rejected_read_only"])
        registry.gauge(
            "repro_serve_uptime_seconds", "Daemon uptime"
        ).set(doc["uptime_seconds"])
        req = doc["requests"]
        registry.counter(
            "repro_serve_queries_total", "Queries answered"
        ).inc(req["queries"])
        registry.counter(
            "repro_serve_unknown_total", "Queries answered UNKNOWN"
        ).inc(req["unknown"])
        registry.counter(
            "repro_serve_errors_total", "Requests that failed internally"
        ).inc(req["errors"])
        adm = doc["admission"]
        registry.gauge(
            "repro_serve_active_requests", "Admitted, not yet released"
        ).set(adm["active"])
        registry.counter(
            "repro_serve_rejected_total",
            "Requests refused at admission, by reason",
            labels={"reason": "busy"},
        ).inc(adm["rejected_busy"])
        registry.counter(
            "repro_serve_rejected_total",
            "Requests refused at admission, by reason",
            labels={"reason": "draining"},
        ).inc(adm["rejected_draining"])
        pool = doc["pool"]
        registry.counter(
            "repro_worker_spawns_total", "Query workers started"
        ).inc(pool["spawns"])
        registry.counter(
            "repro_worker_crashes_total", "Query workers that died"
        ).inc(pool["crashes"])
        registry.counter(
            "repro_serve_retries_total", "Query attempts retried"
        ).inc(pool["retries"])
        store = doc["store"]
        registry.gauge(
            "repro_store_executions", "Executions in the witness store"
        ).set(store["executions"])
        registry.gauge(
            "repro_store_witnesses", "Validated schedules resident"
        ).set(store["witnesses"])
        registry.counter(
            "repro_store_quarantined_total", "Corrupt files quarantined"
        ).inc(store["quarantined"])
        registry.counter(
            "repro_store_flush_failures_total", "Durable flushes that failed"
        ).inc(store["flush_failures"])
        registry.counter(
            "repro_store_evictions_total", "Entries evicted by the LRU cap"
        ).inc(store["evictions"])
        registry.counter(
            "repro_store_compactions_total", "Store compaction passes"
        ).inc(store["compactions"])
        for endpoint, count in sorted(doc["http"].items()):
            registry.counter(
                "repro_serve_http_requests_total",
                "Completed requests, by tracked endpoint",
                labels={"endpoint": endpoint},
            ).inc(count)
        obsv = doc["observability"]
        registry.counter(
            "repro_serve_client_disconnects_total",
            "Requests whose client vanished or stalled past "
            "--client-timeout",
        ).inc(obsv["client_disconnects"])
        registry.counter(
            "repro_serve_trace_dropped_total",
            "Trace records dropped by the bounded/failing sink",
        ).inc(obsv["trace_dropped"])
        # the persistent per-endpoint x kind x phase latency histograms
        # append after the status-derived snapshot
        with self._state_lock:
            histograms = self.metrics.render()
        return registry.render() + histograms


__all__ = ["QueryDaemon", "MAX_BODY_BYTES"]
