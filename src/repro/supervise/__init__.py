"""Supervised execution: crash isolation for long exponential scans.

The paper makes every feasibility query NP-/co-NP-hard, so a full race
scan is a long batch of independent exponential searches -- precisely
the workload where one pathological pair can OOM the host and a crash
loses hours of results.  This package keeps the *scan* alive even when
individual searches die:

* :mod:`repro.supervise.pool` -- a worker pool (spawn context, one
  in-flight pair per worker) that survives segfaults, OOM kills and
  hangs, replacing dead workers and retrying their pairs;
* :mod:`repro.supervise.rlimits` -- kernel ``setrlimit`` caps so a
  blown search is killed by the OS instead of taking the host down;
* :mod:`repro.supervise.retry` -- bounded retries with exponential
  backoff and optional budget escalation;
* :mod:`repro.supervise.checkpoint` -- an append-only, fsync'ed JSONL
  journal of per-pair classifications keyed by a fingerprint of the
  execution + budget, enabling kill-anywhere / ``--resume`` scans.
"""

from repro.supervise.checkpoint import (
    CheckpointJournal,
    JournalError,
    JournalMismatchError,
    pair_count,
    scan_fingerprint,
)
from repro.supervise.pool import CRASH, SupervisedScanner
from repro.supervise.retry import RetryPolicy
from repro.supervise.rlimits import CPU, MEMORY, ResourceLimits

__all__ = [
    "CheckpointJournal",
    "JournalError",
    "JournalMismatchError",
    "pair_count",
    "scan_fingerprint",
    "SupervisedScanner",
    "RetryPolicy",
    "ResourceLimits",
    "CRASH",
    "MEMORY",
    "CPU",
]
