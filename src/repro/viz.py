"""Graphviz (DOT) export for executions, task graphs and witnesses.

Pure text generation (no graphviz dependency): feed the output to
``dot -Tpng`` or any renderer.  Three views:

* :func:`execution_dot` -- the static order graph of an execution:
  events as nodes, program order / fork / join / dependence edges
  distinguished by style (dependences dashed red, exactly the edges
  the Emrath/Ghosh/Padua method ignores);
* :func:`task_graph_dot` -- the EGP task graph with its four edge
  kinds (the paper's Figure 1b rendering);
* :func:`witness_dot` -- a witness schedule as a timeline: events
  ordered by completion, overlap pairs marked.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.approx.taskgraph import TaskGraph, TaskGraphEdge
from repro.core.witness import Witness
from repro.model.execution import ProgramExecution


def _quote(s: str) -> str:
    return '"' + s.replace('"', '\\"') + '"'


def _event_node(exe: ProgramExecution, eid: int) -> str:
    e = exe.event(eid)
    return f"  n{eid} [label={_quote(e.describe())}];"


def execution_dot(exe: ProgramExecution, *, include_dependences: bool = True,
                  name: str = "execution") -> str:
    """DOT for the static order graph, one cluster per process."""
    lines = [f"digraph {name} {{", "  rankdir=TB;", "  node [shape=box, fontsize=10];"]
    for i, proc in enumerate(exe.process_names):
        lines.append(f"  subgraph cluster_{i} {{")
        lines.append(f"    label={_quote(proc)};")
        for eid in exe.process_events(proc):
            lines.append("  " + _event_node(exe, eid))
        lines.append("  }")
    # program order
    for proc in exe.process_names:
        eids = exe.process_events(proc)
        for u, v in zip(eids, eids[1:]):
            lines.append(f"  n{u} -> n{v};")
    # fork / join
    for feid, children in exe.fork_children.items():
        for c in children:
            evs = exe.process_events(c)
            if evs:
                lines.append(f"  n{feid} -> n{evs[0]} [style=dotted];")
    for jeid, targets in exe.join_targets.items():
        for t in targets:
            evs = exe.process_events(t)
            if evs:
                lines.append(f"  n{evs[-1]} -> n{jeid} [style=dotted];")
    if include_dependences:
        for a, b in sorted(exe.dependences):
            lines.append(f"  n{a} -> n{b} [style=dashed, color=red, label=\"D\"];")
    lines.append("}")
    return "\n".join(lines)


_EDGE_STYLE: Dict[TaskGraphEdge, str] = {
    TaskGraphEdge.MACHINE: "",
    TaskGraphEdge.TASK_START: "style=dotted",
    TaskGraphEdge.TASK_END: "style=dotted",
    TaskGraphEdge.SYNCHRONIZATION: "penwidth=2",
}


def task_graph_dot(tg: TaskGraph, *, name: str = "taskgraph") -> str:
    """DOT for an EGP task graph (Figure 1b style)."""
    lines = [f"digraph {name} {{", "  rankdir=TB;", "  node [shape=ellipse, fontsize=10];"]
    for eid in tg.nodes:
        lines.append(_event_node(tg.exe, eid))
    for (u, v), kind in sorted(tg.edge_kinds.items()):
        style = _EDGE_STYLE[kind]
        attr = f" [{style}]" if style else ""
        lines.append(f"  n{u} -> n{v}{attr};")
    lines.append("}")
    return "\n".join(lines)


def witness_dot(witness: Witness, *, name: str = "witness",
                highlight: Optional[List[int]] = None) -> str:
    """DOT timeline of a witness: completion order left to right,
    overlapping pairs joined by red undirected edges."""
    exe = witness.exe
    order = witness.serial_order()
    highlight = set(highlight or ())
    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [shape=box, fontsize=10];"]
    for eid in order:
        extra = ", color=red, penwidth=2" if eid in highlight else ""
        e = exe.event(eid)
        lines.append(f"  n{eid} [label={_quote(e.describe())}{extra}];")
    for u, v in zip(order, order[1:]):
        lines.append(f"  n{u} -> n{v} [color=gray];")
    seen = set()
    for a in order:
        for b in order:
            if a < b and witness.concurrent(a, b) and (a, b) not in seen:
                seen.add((a, b))
                lines.append(
                    f"  n{a} -> n{b} [dir=none, color=red, style=dashed, "
                    f"constraint=false, label=\"overlap\"];"
                )
    lines.append("}")
    return "\n".join(lines)
