"""Tests for the layered best-effort analyzer."""

from hypothesis import given, settings

from repro.approx.combined import BestEffortOrdering
from repro.core.queries import OrderingQueries
from repro.model.builder import ExecutionBuilder
from repro.reductions import semaphore_reduction
from repro.sat.cnf import CNF

from tests.strategies import medium_semaphore_executions


class TestLayerSelection:
    def test_program_order_decided_structurally(self):
        b = ExecutionBuilder()
        p = b.process("p")
        x, y = p.skip(), p.skip()
        best = BestEffortOrdering(b.build())
        assert best.mcb(x, y) is True
        assert best.decided_by[(x, y)] == "structural"
        assert best.mcb(y, x) is False
        assert best.decided_by[(y, x)] == "structural"

    def test_semaphore_ordering_via_hmw(self):
        b = ExecutionBuilder()
        v = b.process("A").sem_v("s")
        p = b.process("B").sem_p("s")
        best = BestEffortOrdering(b.build())
        assert best.mcb(v, p) is True
        assert best.decided_by[(v, p)] == "hmw"

    def test_exact_fallback(self):
        # the deadlock-avoidance ordering HMW cannot see
        b = ExecutionBuilder()
        v1 = b.process("A").sem_v("s")
        proc_b = b.process("B")
        p1, v2 = proc_b.sem_p("s"), proc_b.sem_v("s")
        p2 = b.process("C").sem_p("s")
        best = BestEffortOrdering(b.build())
        assert best.mcb(p1, p2) is True
        assert best.decided_by[(p1, p2)] == "exact"

    def test_unknown_under_tiny_budget(self):
        red = semaphore_reduction(CNF([(1, 1, 1), (-1, -1, -1)]))
        best = BestEffortOrdering(red.execution, max_states=3, use_hmw=False)
        # the marker pair needs real search; budget 3 cannot decide it
        assert best.mcb(red.a, red.b) is None
        assert best.decided_by[(red.a, red.b)] == "unknown"

    def test_self_pair(self):
        b = ExecutionBuilder()
        x = b.process("p").skip()
        assert BestEffortOrdering(b.build()).mcb(x, x) is False


class TestSoundness:
    @given(medium_semaphore_executions())
    @settings(max_examples=15, deadline=None)
    def test_never_wrong_when_decided(self, exe):
        best = BestEffortOrdering(exe)
        exact = OrderingQueries(exe)
        n = len(exe)
        for a in range(n):
            for b in range(n):
                if a == b:
                    continue
                answer = best.mcb(a, b)
                if answer is not None:
                    assert answer == exact.mcb(a, b), (a, b)

    def test_provenance_counts(self):
        b = ExecutionBuilder()
        v = b.process("A").sem_v("s")
        p = b.process("B").sem_p("s")
        b.process("C").skip()
        out = BestEffortOrdering(b.build()).relation_with_provenance()
        assert sum(out["layers"].values()) == len(out["relation"])
        assert out["layers"].get("hmw", 0) >= 1
        assert out["layers"].get("exact", 0) >= 1

    def test_event_style_skips_hmw(self):
        b = ExecutionBuilder()
        post = b.process("A").post("v")
        wait = b.process("B").wait("v")
        best = BestEffortOrdering(b.build())
        assert best._hmw_relation is None
        assert best.mcb(post, wait) is True  # exact layer handles it
        assert best.decided_by[(post, wait)] == "exact"
