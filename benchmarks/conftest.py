"""Shared helpers for the benchmark harness.

Every ``bench_*.py`` file regenerates one artifact of the paper (a
table, a figure, a theorem's claimed equivalence, or a remark) per the
experiment index in DESIGN.md.  Conventions:

* each benchmark *asserts* the reproduced claim (who wins / what is
  equivalent), so ``pytest benchmarks/ --benchmark-only`` is also a
  correctness gate;
* each prints the regenerated rows through :func:`report`, which
  writes to stdout (visible with ``-s``) *and* appends to
  ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote runs;
* randomness is always seeded.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(name: str, lines: Iterable[str]) -> None:
    """Print reproduction rows and persist them under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(lines)
    print(f"\n[{name}]\n{text}")
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")


def table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> List[str]:
    """Fixed-width ASCII table used by every benchmark report."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    out = [fmt.format(*headers), fmt.format(*("-" * w for w in widths))]
    out += [fmt.format(*row) for row in rows]
    return out


@pytest.fixture
def reporter():
    return report


try:  # pragma: no cover - presence depends on the environment
    import pytest_benchmark  # noqa: F401
except ImportError:
    # CI installs only pytest + hypothesis; the benchmarks must still
    # run as a correctness gate there, so fall back to a no-op timer
    # with the same call shape as pytest-benchmark's fixture.
    @pytest.fixture
    def benchmark():
        def run(fn, *args, **kwargs):
            return fn(*args, **kwargs)

        return run
